// Shape tests for the simulated framework models: the qualitative
// relations the paper reports must hold (who wins, OOM matrix, phase
// overlap, scaling, small-job overheads).

#include <gtest/gtest.h>

#include "common/units.h"
#include "simfw/experiment.h"
#include "simfw/profiles.h"

namespace dmb::simfw {
namespace {

ExperimentResult RunSim(Framework fw, const WorkloadProfile& profile,
                     int64_t gb, bool monitor = false) {
  ExperimentOptions options;
  options.run.monitor = monitor;
  return SimulateWorkload(fw, profile, gb * kGiB, options);
}

TEST(SimFwTest, TextSortOrderingMatchesPaper) {
  // 8 GB Text Sort: DataMPI fastest; Hadoop and Spark comparable.
  const auto h = RunSim(Framework::kHadoop, TextSortProfile(), 8);
  const auto s = RunSim(Framework::kSpark, TextSortProfile(), 8);
  const auto d = RunSim(Framework::kDataMPI, TextSortProfile(), 8);
  ASSERT_TRUE(h.job.ok());
  ASSERT_TRUE(s.job.ok()) << s.job.status;
  ASSERT_TRUE(d.job.ok());
  EXPECT_LT(d.job.seconds, s.job.seconds);
  EXPECT_LT(d.job.seconds, h.job.seconds);
  // Improvement vs Hadoop in the paper's 34-42% band (tolerant bounds).
  const double improvement = 1.0 - d.job.seconds / h.job.seconds;
  EXPECT_GT(improvement, 0.25) << d.job.seconds << " vs " << h.job.seconds;
  EXPECT_LT(improvement, 0.55);
}

TEST(SimFwTest, SparkOomMatrixMatchesPaper) {
  // Text Sort: 8 GB survives, 16+ GB dies. Normal Sort: dies at 4 GB.
  EXPECT_TRUE(RunSim(Framework::kSpark, TextSortProfile(), 8).job.ok());
  EXPECT_TRUE(RunSim(Framework::kSpark, TextSortProfile(), 16)
                  .job.status.IsOutOfMemory());
  EXPECT_TRUE(RunSim(Framework::kSpark, TextSortProfile(), 32)
                  .job.status.IsOutOfMemory());
  EXPECT_TRUE(RunSim(Framework::kSpark, NormalSortProfile(), 4)
                  .job.status.IsOutOfMemory());
  EXPECT_TRUE(RunSim(Framework::kSpark, NormalSortProfile(), 8)
                  .job.status.IsOutOfMemory());
  // WordCount / Grep / K-means never OOM.
  EXPECT_TRUE(RunSim(Framework::kSpark, WordCountProfile(), 64).job.ok());
  EXPECT_TRUE(RunSim(Framework::kSpark, GrepProfile(), 64).job.ok());
  EXPECT_TRUE(RunSim(Framework::kSpark, KmeansProfile(), 64).job.ok());
}

TEST(SimFwTest, NaiveBayesHasNoSparkImplementation) {
  const auto s = RunSim(Framework::kSpark, NaiveBayesProfile(), 8);
  EXPECT_EQ(s.job.status.code(), StatusCode::kNotImplemented);
}

TEST(SimFwTest, WordCountDataMPIAndSparkBeatHadoopByHalf) {
  const auto h = RunSim(Framework::kHadoop, WordCountProfile(), 32);
  const auto s = RunSim(Framework::kSpark, WordCountProfile(), 32);
  const auto d = RunSim(Framework::kDataMPI, WordCountProfile(), 32);
  ASSERT_TRUE(h.job.ok() && s.job.ok() && d.job.ok());
  // Paper: both ~53% better than Hadoop and similar to each other.
  EXPECT_GT(1.0 - d.job.seconds / h.job.seconds, 0.40);
  EXPECT_GT(1.0 - s.job.seconds / h.job.seconds, 0.40);
  const double rel =
      std::abs(d.job.seconds - s.job.seconds) / s.job.seconds;
  EXPECT_LT(rel, 0.25) << "DataMPI and Spark similar on WordCount";
}

TEST(SimFwTest, GrepOrderingDataMPIBestSparkSecond) {
  const auto h = RunSim(Framework::kHadoop, GrepProfile(), 32);
  const auto s = RunSim(Framework::kSpark, GrepProfile(), 32);
  const auto d = RunSim(Framework::kDataMPI, GrepProfile(), 32);
  ASSERT_TRUE(h.job.ok() && s.job.ok() && d.job.ok());
  EXPECT_LT(d.job.seconds, s.job.seconds);
  EXPECT_LT(s.job.seconds, h.job.seconds);
}

TEST(SimFwTest, ExecutionTimeScalesWithDataSize) {
  for (Framework fw :
       {Framework::kHadoop, Framework::kSpark, Framework::kDataMPI}) {
    double prev = 0.0;
    for (int64_t gb : {8, 16, 32, 64}) {
      const auto r = RunSim(fw, WordCountProfile(), gb);
      ASSERT_TRUE(r.job.ok());
      EXPECT_GT(r.job.seconds, prev)
          << FrameworkName(fw) << " at " << gb << " GB";
      prev = r.job.seconds;
    }
  }
}

TEST(SimFwTest, SmallJobOverheadDominatedByHadoop) {
  ExperimentOptions options;
  options.run.slots_per_node = 1;  // paper: one task per node
  const int64_t small = 128 * kMiB;
  const auto h =
      SimulateWorkload(Framework::kHadoop, WordCountProfile(), small, options);
  const auto s =
      SimulateWorkload(Framework::kSpark, WordCountProfile(), small, options);
  const auto d = SimulateWorkload(Framework::kDataMPI, WordCountProfile(),
                                  small, options);
  ASSERT_TRUE(h.job.ok() && s.job.ok() && d.job.ok());
  // Paper: DataMPI ~= Spark, both ~54% faster than Hadoop.
  EXPECT_GT(1.0 - d.job.seconds / h.job.seconds, 0.35);
  EXPECT_LT(std::abs(d.job.seconds - s.job.seconds) /
                std::max(d.job.seconds, s.job.seconds),
            0.45);
}

TEST(SimFwTest, DataMPIPhase1IncludesTheShuffle) {
  // The pipelined shuffle means the O phase is a large fraction of the
  // job while Hadoop's map phase is a smaller one (its shuffle+reduce
  // tail is long).
  const auto d = RunSim(Framework::kDataMPI, TextSortProfile(), 8);
  const auto h = RunSim(Framework::kHadoop, TextSortProfile(), 8);
  ASSERT_TRUE(d.job.ok() && h.job.ok());
  EXPECT_GT(d.job.phase1_seconds, 0);
  EXPECT_GT(h.job.phase1_seconds, 0);
  EXPECT_LT(d.job.phase1_seconds, d.job.seconds);
  EXPECT_LT(h.job.phase1_seconds, h.job.seconds);
}

TEST(SimFwTest, MonitoredRunProducesAllSeries) {
  const auto d = RunSim(Framework::kDataMPI, TextSortProfile(), 8, true);
  ASSERT_TRUE(d.job.ok());
  for (const char* name : {"cpu.threads", "disk.read_mbps",
                           "disk.write_mbps", "net.tx_mbps",
                           "mem.per_node_gb"}) {
    EXPECT_TRUE(d.job.series.count(name)) << name;
  }
  EXPECT_GT(d.averages.cpu_pct, 0);
  EXPECT_LT(d.averages.cpu_pct, 100);
  EXPECT_GT(d.averages.mem_gb, 0);
}

TEST(SimFwTest, SortResourceProfileShape) {
  // Paper Figure 4(a-d): DataMPI's network throughput beats Hadoop's,
  // Hadoop burns more CPU, memory footprints comparable.
  const auto h = RunSim(Framework::kHadoop, TextSortProfile(), 8, true);
  const auto d = RunSim(Framework::kDataMPI, TextSortProfile(), 8, true);
  ASSERT_TRUE(h.job.ok() && d.job.ok());
  EXPECT_GT(d.averages.net_mbps, h.averages.net_mbps)
      << "pipelined shuffle sustains higher network throughput";
  EXPECT_LT(d.averages.cpu_pct, h.averages.cpu_pct + 20);
  EXPECT_GT(d.averages.disk_read_mbps, 0);
  EXPECT_GT(h.averages.disk_write_mbps, d.averages.disk_write_mbps * 0.8);
}

TEST(SimFwTest, WordCountCpuShape) {
  // Paper Figure 4(e): Hadoop ~80% CPU, DataMPI ~47%, Spark ~30%.
  const auto h = RunSim(Framework::kHadoop, WordCountProfile(), 32, true);
  const auto s = RunSim(Framework::kSpark, WordCountProfile(), 32, true);
  const auto d = RunSim(Framework::kDataMPI, WordCountProfile(), 32, true);
  ASSERT_TRUE(h.job.ok() && s.job.ok() && d.job.ok());
  EXPECT_GT(h.averages.cpu_pct, d.averages.cpu_pct);
  EXPECT_GT(d.averages.cpu_pct, s.averages.cpu_pct);
}

TEST(SimFwTest, SlotsTuningPeaksAtFour) {
  // Figure 2(b): 4 tasks/workers per node beats 2 and 6, for all three.
  for (Framework fw :
       {Framework::kHadoop, Framework::kSpark, Framework::kDataMPI}) {
    auto throughput = [&](int slots) {
      ExperimentOptions options;
      options.run.slots_per_node = slots;
      // Paper methodology: 1 GB per Hadoop/DataMPI task, 128 MB per
      // Spark worker.
      const int64_t per_task =
          fw == Framework::kSpark ? 128 * kMiB : 1 * kGiB;
      const int64_t data = per_task * slots * 8;
      const auto r = SimulateWorkload(fw, TextSortProfile(), data, options);
      EXPECT_TRUE(r.job.ok()) << FrameworkName(fw) << " slots=" << slots;
      return static_cast<double>(data) / kMiB / r.job.seconds;
    };
    const double t2 = throughput(2);
    const double t4 = throughput(4);
    const double t6 = throughput(6);
    EXPECT_GT(t4, t2) << FrameworkName(fw);
    EXPECT_GT(t4, t6) << FrameworkName(fw);
  }
}

TEST(SimFwTest, DeterministicAcrossRuns) {
  const auto a = RunSim(Framework::kHadoop, GrepProfile(), 16);
  const auto b = RunSim(Framework::kHadoop, GrepProfile(), 16);
  ASSERT_TRUE(a.job.ok() && b.job.ok());
  EXPECT_DOUBLE_EQ(a.job.seconds, b.job.seconds);
}

TEST(SimFwTest, KmeansAndBayesOrderings) {
  const auto hk = RunSim(Framework::kHadoop, KmeansProfile(), 16);
  const auto sk = RunSim(Framework::kSpark, KmeansProfile(), 16);
  const auto dk = RunSim(Framework::kDataMPI, KmeansProfile(), 16);
  ASSERT_TRUE(hk.job.ok() && sk.job.ok() && dk.job.ok());
  EXPECT_LT(dk.job.seconds, sk.job.seconds);
  EXPECT_LT(sk.job.seconds, hk.job.seconds);

  const auto hb = RunSim(Framework::kHadoop, NaiveBayesProfile(), 16);
  const auto db = RunSim(Framework::kDataMPI, NaiveBayesProfile(), 16);
  ASSERT_TRUE(hb.job.ok() && db.job.ok());
  const double improvement = 1.0 - db.job.seconds / hb.job.seconds;
  EXPECT_GT(improvement, 0.20);
  EXPECT_LT(improvement, 0.55);
}

}  // namespace
}  // namespace dmb::simfw
