// Multi-stage job plans: the shared stage-DAG runtime's job description.
//
// A Plan is a DAG of stages, each a JobSpec-shaped map/shuffle/reduce
// step, connected by edges that say how a parent stage's output reaches
// its consumer:
//
//   * narrow — partition-aligned, in-memory handoff: parent output
//     partition p becomes the child's map split p (JobSpec.input_splits;
//     requires equal parallelism). No gather, no re-split, no disk —
//     the pipelined stage coupling the paper credits DataMPI for.
//   * wide — a materialization barrier: every parent partition is
//     gathered and re-split evenly across the child's map tasks, whose
//     emissions then cross the child's own shuffle (partitioner / sort /
//     combiner) — the Hadoop-style job boundary.
//   * state — the parent's merged output is handed to the child's
//     binder, not its record input. The binder rewrites the stage's
//     JobSpec before it runs (e.g. a range partitioner built from a
//     sampling stage, or an iteration's map function closed over the
//     model folded from the previous round). A binder that clears
//     map_fn turns the stage into a pass-through (used by converged
//     iterations): the state parent's partitions are forwarded
//     unchanged.
//
// Stages are appended with AddStage, whose input edges may only
// reference already-added stages — a plan is acyclic by construction.
// The last-added stage is the plan's output stage; every stage still
// executes (independent branches run concurrently on the scheduler).
//
// Two per-stage hooks extend the static DAG at run time:
//
//   * cache_output — the stage's partitions are registered in the
//     engine's StageCache under this key after it runs; when the key is
//     already cached (from an earlier stage or an earlier RunPlan
//     against the same engine) the stage is *not run at all* and the
//     cached partitions stand in for its output. AddCachedInput is the
//     root-input flavour: a stage that (on a miss) splits a
//     provider-supplied record vector into partition-aligned splits and
//     caches them — iterative plans split their input once.
//   * adapt — sample-driven adaptive re-planning: after the stage's
//     output lands, the hook observes its per-partition sizes and may
//     rewrite the JobSpec (parallelism, partitioner, ...) of stages
//     strictly downstream that have not started yet.

#ifndef DATAMPI_BENCH_RUNTIME_PLAN_H_
#define DATAMPI_BENCH_RUNTIME_PLAN_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/types.h"

namespace dmb::runtime {

using datampi::KVPair;

/// \brief How a parent stage's output reaches a consuming stage.
enum class EdgeKind {
  kNarrow,
  kWide,
  kState,
};

/// \brief One incoming edge of a stage.
struct StageInput {
  int stage = -1;
  EdgeKind kind = EdgeKind::kWide;
};

/// \brief Late binding hook: called by the scheduler when the stage's
/// inputs are ready, with the merged output of its state parent (empty
/// when the stage has none). Mutates the stage's JobSpec copy before it
/// runs; clearing job->map_fn skips the stage (pass-through — requires
/// a state parent to forward, InvalidArgument otherwise). Binders along
/// a state chain run strictly in dependency order, so they may share
/// driver-side state through their closures.
using StageBinder =
    std::function<Status(const std::vector<KVPair>& state,
                         engine::JobSpec* job)>;

/// \brief What an adapt hook sees of its stage's completed output:
/// observed per-partition sizes (the statistics a cache must track are
/// exactly the ones adaptive execution needs).
struct StageObservation {
  int stage = -1;
  std::vector<int64_t> partition_records;
  std::vector<int64_t> partition_bytes;
  int64_t output_records = 0;
  int64_t output_bytes = 0;
};

/// \brief Handed to an adapt hook to rewrite not-yet-started downstream
/// stages. Implemented by the scheduler.
class Replanner {
 public:
  virtual ~Replanner() = default;
  /// \brief The mutable JobSpec of `stage`, iff it is strictly
  /// downstream of the observed stage and has not been submitted yet;
  /// null otherwise (rewriting anything else could race with a running
  /// stage). The returned spec is the copy the stage will actually run
  /// — its binder (if any) runs after the rewrite and sees the adapted
  /// values.
  virtual engine::JobSpec* MutableJob(int stage) = 0;
};

/// \brief Adaptive re-planning hook: runs under the scheduler lock
/// right after the stage's output lands and before any downstream stage
/// is released, so the rewrites it makes through the Replanner are what
/// those stages run with. Keep it cheap (it holds up the whole plan). A
/// non-OK status fails the plan like a stage failure. No-op on
/// single-stage plans (nothing is downstream).
using StageAdaptFn =
    std::function<Status(const StageObservation& observed, Replanner* plan)>;

/// \brief Lazily builds the records of a cached root input; called only
/// on a cache miss (the point: a hit skips the build entirely).
using CachedInputProvider = std::function<
    Result<std::shared_ptr<const std::vector<KVPair>>>()>;

/// \brief One stage: a name, a JobSpec-shaped step and an optional
/// binder. `job.input` may be left empty for stages fed by data edges.
struct StageSpec {
  std::string name;
  engine::JobSpec job;
  StageBinder binder;
  /// Non-empty: persist this stage's output partitions in the engine's
  /// StageCache under this key, and serve the stage straight from the
  /// cache (skipping binder and execution) when the key is already
  /// registered with a matching partition count. Plans run without a
  /// cache (SchedulerOptions.cache == nullptr) execute normally.
  std::string cache_output;
  /// Set (with a non-empty cache_output key) for AddCachedInput stages:
  /// on a miss the provider's records are split evenly into
  /// `job.parallelism` partition-aligned splits — the same contiguous
  /// slicing the engines apply to a flat root input — and cached; the
  /// stage never touches the engine. Such a stage must be a root (no
  /// input edges, no job input, no binder).
  CachedInputProvider input_provider;
  /// Optional adaptive re-planning hook (see StageAdaptFn).
  StageAdaptFn adapt;
};

/// \brief Plan-level execution knobs (consumed by the StageScheduler).
struct PlanOptions {
  /// Pipeline narrow edges at batch granularity: the consumer of a
  /// single-parent narrow edge is submitted while its producer is still
  /// running and pulls record batches from a bounded per-partition
  /// channel (DataMPI-style cross-stage overlap). Off = every edge is a
  /// whole-partition barrier handoff (the pre-pipelining behaviour);
  /// output is byte-identical either way. Wide and state edges, and
  /// stages with several data parents, always use the barrier path.
  bool pipeline_narrow_edges = false;
  /// Producer-side flush granularity of a pipelined edge (records per
  /// batch).
  int pipeline_batch_records = 1024;
  /// Per-partition backpressure bound of a pipelined edge: a producer
  /// blocks while the consumer is this many batches behind.
  int pipeline_channel_batches = 8;
};

/// \brief The stage DAG.
class Plan {
 public:
  struct Stage {
    StageSpec spec;
    std::vector<StageInput> inputs;
  };

  /// \brief Appends a stage and returns its id. `inputs` may only
  /// reference ids returned by earlier AddStage calls (checked by
  /// Validate); an empty name defaults to "stage-<id>".
  int AddStage(StageSpec spec, std::vector<StageInput> inputs = {});

  /// \brief Appends a cached root-input stage: a no-engine stage whose
  /// output is the provider's records split evenly into `parallelism`
  /// partition-aligned splits, registered in the StageCache under
  /// `key`. On a hit the provider is never called — repeated plans (an
  /// iteration driver, the JobServer's per-tenant small jobs) share one
  /// materialized split. Consume it with a narrow edge of the same
  /// parallelism. Without a cache the stage still splits (the provider
  /// runs every time).
  int AddCachedInput(std::string key, CachedInputProvider provider,
                     int parallelism);

  /// \brief Structural validation: edge ids in range (and < the stage's
  /// own id), at most one state edge per stage, no mixing of narrow and
  /// wide data edges into one stage, state edges have a binder, stages
  /// with data edges carry no root input, narrow parents match the
  /// consumer's parallelism (when no binder or upstream adapt hook can
  /// change it), and cached-input stages are well-formed roots.
  Status Validate() const;

  const std::vector<Stage>& stages() const { return stages_; }
  bool empty() const { return stages_.empty(); }
  /// \brief The stage whose output is the plan's output (last added).
  int output_stage() const { return static_cast<int>(stages_.size()) - 1; }

  PlanOptions& options() { return options_; }
  const PlanOptions& options() const { return options_; }

 private:
  std::vector<Stage> stages_;
  PlanOptions options_;
};

/// \brief Result of a plan run: the output stage's partitions plus the
/// unified stats summed over executed stages, with the per-stage
/// breakdown in EngineStats::stages.
struct PlanOutput {
  std::vector<std::vector<KVPair>> partitions;
  engine::EngineStats stats;

  /// \brief Concatenation of all partitions in partition order.
  std::vector<KVPair> Merged() const;
};

}  // namespace dmb::runtime

#endif  // DATAMPI_BENCH_RUNTIME_PLAN_H_
