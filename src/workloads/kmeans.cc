#include "workloads/kmeans.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/byte_buffer.h"
#include "common/logging.h"
#include "runtime/plan.h"

namespace dmb::workloads {

namespace {

using datampi::KVPair;

/// A per-cluster partial aggregate: running count + sparse sum.
struct Partial {
  int64_t count = 0;
  std::map<uint32_t, double> sum;
};

std::string EncodePartial(const Partial& p) {
  ByteBuffer buf;
  buf.AppendVarint(static_cast<uint64_t>(p.count));
  buf.AppendVarint(p.sum.size());
  uint32_t prev = 0;
  for (const auto& [idx, v] : p.sum) {
    buf.AppendVarint(idx - prev);
    prev = idx;
    buf.AppendDouble(v);
  }
  return std::string(buf.view());
}

Result<Partial> DecodePartial(std::string_view data) {
  ByteReader reader(data);
  Partial p;
  uint64_t count, n;
  DMB_RETURN_NOT_OK(reader.ReadVarint(&count));
  DMB_RETURN_NOT_OK(reader.ReadVarint(&n));
  p.count = static_cast<int64_t>(count);
  uint32_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t delta;
    double v;
    DMB_RETURN_NOT_OK(reader.ReadVarint(&delta));
    DMB_RETURN_NOT_OK(reader.ReadDouble(&v));
    prev += static_cast<uint32_t>(delta);
    p.sum[prev] += v;
  }
  return p;
}

Partial PartialOfVector(const SparseVector& x) {
  Partial p;
  p.count = 1;
  for (const auto& [idx, w] : x.entries) {
    p.sum[idx] += static_cast<double>(w);
  }
  return p;
}

Status MergeInto(Partial* acc, std::string_view encoded) {
  DMB_ASSIGN_OR_RETURN(Partial other, DecodePartial(encoded));
  acc->count += other.count;
  for (const auto& [idx, v] : other.sum) acc->sum[idx] += v;
  return Status::OK();
}

std::string MergePartialStrings(std::string_view,
                                const std::vector<std::string>& values) {
  Partial acc;
  for (const auto& v : values) {
    DMB_CHECK_OK(MergeInto(&acc, v));
  }
  return EncodePartial(acc);
}

std::vector<double> CentroidNorms(const KmeansModel& model) {
  std::vector<double> norms;
  norms.reserve(model.centroids.size());
  for (const auto& c : model.centroids) {
    double n2 = 0.0;
    for (double v : c) n2 += v * v;
    norms.push_back(n2);
  }
  return norms;
}

/// Builds the next model from per-cluster merged partials. Clusters that
/// received no points keep their previous centroid (Mahout behaviour).
KmeansModel ModelFromPartials(const std::vector<KVPair>& merged,
                              const KmeansModel& previous) {
  KmeansModel next = previous;
  next.counts.assign(previous.centroids.size(), 0);
  for (const auto& kv : merged) {
    const int cluster = std::stoi(kv.key);
    DMB_CHECK(cluster >= 0 && cluster < previous.k());
    auto partial = DecodePartial(kv.value);
    DMB_CHECK(partial.ok());
    if (partial->count == 0) continue;
    auto& centroid = next.centroids[static_cast<size_t>(cluster)];
    std::fill(centroid.begin(), centroid.end(), 0.0);
    for (const auto& [idx, v] : partial->sum) {
      if (idx < centroid.size()) {
        centroid[idx] = v / static_cast<double>(partial->count);
      }
    }
    next.counts[static_cast<size_t>(cluster)] = partial->count;
  }
  return next;
}

}  // namespace

double SparseDenseDistance2(const SparseVector& x,
                            const std::vector<double>& centroid,
                            double centroid_norm2) {
  // ||x - c||^2 = ||x||^2 + ||c||^2 - 2<x, c>, touching only x's nnz.
  double xnorm2 = 0.0, dot = 0.0;
  for (const auto& [idx, w] : x.entries) {
    const double wd = static_cast<double>(w);
    xnorm2 += wd * wd;
    if (idx < centroid.size()) dot += wd * centroid[idx];
  }
  double d2 = xnorm2 + centroid_norm2 - 2.0 * dot;
  return d2 < 0.0 ? 0.0 : d2;
}

int NearestCentroid(const SparseVector& x, const KmeansModel& model,
                    const std::vector<double>& centroid_norms2) {
  int best = 0;
  double best_d2 = SparseDenseDistance2(x, model.centroids[0],
                                        centroid_norms2[0]);
  for (int c = 1; c < model.k(); ++c) {
    const double d2 = SparseDenseDistance2(
        x, model.centroids[static_cast<size_t>(c)],
        centroid_norms2[static_cast<size_t>(c)]);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = c;
    }
  }
  return best;
}

KmeansModel InitialCentroids(const std::vector<SparseVector>& vectors, int k,
                             uint32_t dim) {
  DMB_CHECK(static_cast<size_t>(k) <= vectors.size());
  KmeansModel model;
  model.centroids.assign(static_cast<size_t>(k),
                         std::vector<double>(dim, 0.0));
  model.counts.assign(static_cast<size_t>(k), 0);
  for (int c = 0; c < k; ++c) {
    for (const auto& [idx, w] : vectors[static_cast<size_t>(c)].entries) {
      if (idx < dim) {
        model.centroids[static_cast<size_t>(c)][idx] =
            static_cast<double>(w);
      }
    }
  }
  return model;
}

KmeansModel KmeansIterationReference(const std::vector<SparseVector>& vectors,
                                     const KmeansModel& model) {
  const auto norms = CentroidNorms(model);
  std::vector<Partial> partials(static_cast<size_t>(model.k()));
  for (const auto& x : vectors) {
    const int c = NearestCentroid(x, model, norms);
    auto& p = partials[static_cast<size_t>(c)];
    ++p.count;
    for (const auto& [idx, w] : x.entries) {
      p.sum[idx] += static_cast<double>(w);
    }
  }
  std::vector<KVPair> merged;
  for (int c = 0; c < model.k(); ++c) {
    merged.push_back(KVPair{std::to_string(c),
                            EncodePartial(partials[static_cast<size_t>(c)])});
  }
  return ModelFromPartials(merged, model);
}

namespace {

/// Builds one iteration's map function: assign each vector to its
/// nearest centroid of `model` and emit the per-vector partial. The
/// model (and its norms) are captured by value — the chain state keeps
/// mutating after binding.
engine::MapFn AssignMapFn(const std::vector<SparseVector>& vectors,
                          KmeansModel model) {
  auto norms = CentroidNorms(model);
  return [&vectors, model = std::move(model), norms = std::move(norms)](
             std::string_view, std::string_view value,
             engine::MapContext* ctx) -> Status {
    const size_t i = std::stoull(std::string(value));
    const int c = NearestCentroid(vectors[i], model, norms);
    return ctx->Emit(std::to_string(c),
                     EncodePartial(PartialOfVector(vectors[i])));
  };
}

/// The JobSpec shape shared by every iteration stage. Records are vector
/// indexes; the map function looks them up. Local aggregation happens in
/// the engines' map-side combiner pass (per pipelined batch on DataMPI,
/// per spill run on MapReduce, per partition on rddlite), which folds
/// per-vector partials into per-cluster partials before they cross the
/// shuffle.
engine::JobSpec IterationSpec(
    const EngineConfig& config,
    std::shared_ptr<const std::vector<KVPair>> input) {
  engine::JobSpec spec = BaseSpec(config);
  spec.input = std::move(input);
  spec.combiner = MergePartialStrings;
  spec.reduce_fn = engine::CombinerAsReduce(MergePartialStrings);
  return spec;
}

}  // namespace

Result<KmeansModel> KmeansIteration(engine::Engine& eng,
                                    const std::vector<SparseVector>& vectors,
                                    const KmeansModel& model,
                                    const EngineConfig& config) {
  engine::JobSpec spec =
      IterationSpec(config, engine::IndexInput(vectors.size()));
  spec.map_fn = AssignMapFn(vectors, model);
  DMB_ASSIGN_OR_RETURN(engine::JobOutput out, eng.Run(spec));
  return ModelFromPartials(out.Merged(), model);
}

Result<std::pair<KmeansModel, int>> KmeansTrain(
    engine::Engine& eng, const std::vector<SparseVector>& vectors, int k,
    uint32_t dim, double threshold, int max_iterations,
    const EngineConfig& config) {
  if (max_iterations < 1) {
    return std::make_pair(InitialCentroids(vectors, k, dim), 0);
  }
  const auto input = engine::IndexInput(vectors.size());

  // The whole training run is ONE plan: max_iterations stages chained by
  // state edges. Each stage's binder folds the previous stage's partials
  // into the model, checks convergence, and either binds the next
  // assignment map or skips the stage (pass-through) — the scheduler
  // runs binders of a state chain strictly in dependency order, so they
  // may share the driver-side model through this chain struct.
  struct Chain {
    KmeansModel model;
    double threshold = 0.0;
    bool converged = false;
    int iterations = 0;
  };
  auto chain = std::make_shared<Chain>();
  chain->model = InitialCentroids(vectors, k, dim);
  chain->threshold = threshold;
  chain->iterations = 1;  // stage 0 always runs

  runtime::Plan plan;
  int prev = -1;
  for (int i = 0; i < max_iterations; ++i) {
    runtime::StageSpec stage;
    stage.name = "kmeans-iter-" + std::to_string(i);
    stage.job = IterationSpec(config, input);
    std::vector<runtime::StageInput> inputs;
    if (i == 0) {
      stage.job.map_fn = AssignMapFn(vectors, chain->model);
    } else {
      inputs.push_back({prev, runtime::EdgeKind::kState});
      stage.binder = [&vectors, chain](const std::vector<KVPair>& state,
                                       engine::JobSpec* job) -> Status {
        if (chain->converged) {
          job->map_fn = nullptr;  // pass the final partials through
          return Status::OK();
        }
        KmeansModel next = ModelFromPartials(state, chain->model);
        const double shift = MaxCentroidShift(chain->model, next);
        chain->model = std::move(next);
        if (shift < chain->threshold) {
          chain->converged = true;
          job->map_fn = nullptr;
          return Status::OK();
        }
        ++chain->iterations;
        job->map_fn = AssignMapFn(vectors, chain->model);
        return Status::OK();
      };
    }
    prev = plan.AddStage(std::move(stage), std::move(inputs));
  }

  DMB_ASSIGN_OR_RETURN(runtime::PlanOutput out, eng.RunPlan(plan));
  // The plan output is the last executed iteration's partials (skipped
  // stages forward them). Folding is idempotent, so this is exact both
  // when training converged and when it ran out of iterations.
  KmeansModel model = ModelFromPartials(out.Merged(), chain->model);
  return std::make_pair(std::move(model), chain->iterations);
}

double MaxCentroidShift(const KmeansModel& a, const KmeansModel& b) {
  DMB_CHECK(a.k() == b.k());
  double max_shift = 0.0;
  for (int c = 0; c < a.k(); ++c) {
    const auto& ca = a.centroids[static_cast<size_t>(c)];
    const auto& cb = b.centroids[static_cast<size_t>(c)];
    DMB_CHECK(ca.size() == cb.size());
    double d2 = 0.0;
    for (size_t i = 0; i < ca.size(); ++i) {
      const double diff = ca[i] - cb[i];
      d2 += diff * diff;
    }
    max_shift = std::max(max_shift, std::sqrt(d2));
  }
  return max_shift;
}

}  // namespace dmb::workloads
