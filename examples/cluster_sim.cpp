// Cluster simulation walk-through: reproduce the paper's headline result
// interactively.
//
// Simulates the 8 GB Text Sort of Section 4.4 on the modelled testbed
// for a chosen framework and prints the phase timeline plus resource
// averages — the programmatic path behind bench/fig4_profile.
//
// Build & run:  ./build/examples/cluster_sim [hadoop|spark|datampi] [GB]

#include <iostream>
#include <string>

#include "common/units.h"
#include "simfw/experiment.h"
#include "simfw/profiles.h"

using namespace dmb;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "datampi";
  const int gb = argc > 2 ? std::atoi(argv[2]) : 8;

  simfw::Framework fw;
  if (which == "hadoop") {
    fw = simfw::Framework::kHadoop;
  } else if (which == "spark") {
    fw = simfw::Framework::kSpark;
  } else if (which == "datampi") {
    fw = simfw::Framework::kDataMPI;
  } else {
    std::cerr << "usage: cluster_sim [hadoop|spark|datampi] [GB]\n";
    return 1;
  }

  simfw::ExperimentOptions options;
  options.run.monitor = true;
  std::cout << "Simulating " << gb << " GB Text Sort on "
            << simfw::FrameworkName(fw) << " over the "
            << options.cluster.name << " testbed...\n";

  const auto result = simfw::SimulateWorkload(
      fw, simfw::TextSortProfile(), static_cast<int64_t>(gb) * kGiB, options);

  if (!result.job.ok()) {
    std::cout << "Job failed: " << result.job.status.ToString() << "\n";
    std::cout << "(The paper observes exactly this for Spark sorts beyond "
                 "8 GB: executor OutOfMemoryError.)\n";
    return 0;
  }

  std::cout << "\nJob completed in " << FormatSeconds(result.job.seconds)
            << "\n";
  std::cout << "  phase 1 (map/stage-0/O) ended at "
            << FormatSeconds(result.job.phase1_seconds) << "\n";
  std::cout << "  intermediate data shuffled : "
            << FormatBytes(static_cast<int64_t>(result.job.shuffle_mb) << 20)
            << "\n";
  std::cout << "  HDFS bytes written (x3 rep): "
            << FormatBytes(static_cast<int64_t>(result.job.hdfs_write_mb)
                           << 20)
            << "\n";
  std::cout << "\nPer-node resource averages over the run:\n";
  std::cout << "  CPU        : " << result.averages.cpu_pct << " %\n";
  std::cout << "  CPU waitIO : " << result.averages.cpu_wait_io_pct << " %\n";
  std::cout << "  disk read  : " << result.averages.disk_read_mbps
            << " MB/s\n";
  std::cout << "  disk write : " << result.averages.disk_write_mbps
            << " MB/s\n";
  std::cout << "  network tx : " << result.averages.net_mbps << " MB/s\n";
  std::cout << "  memory     : " << result.averages.mem_gb << " GB\n";
  std::cout << "\nPaper reference for 8 GB Text Sort: DataMPI 69 s, Hadoop "
               "117 s, Spark 114 s.\n";
  return 0;
}
