#include "core/kv_buffer.h"

#include <utility>

namespace dmb::datampi {

shuffle::CollectorOptions SpillableKVBuffer::ToCollectorOptions(
    const KVBufferOptions& options) {
  shuffle::CollectorOptions copts;
  copts.num_partitions = 1;
  copts.sort_by_key = options.sort_by_key;
  copts.memory_budget_bytes = options.memory_budget_bytes;
  copts.on_budget = shuffle::BudgetAction::kSpill;
  copts.spill_dir = options.spill_dir;
  copts.spill_io = options.spill_io;
  copts.parallel = options.parallel;
  return copts;
}

SpillableKVBuffer::SpillableKVBuffer(KVBufferOptions options)
    : collector_(ToCollectorOptions(options)) {}

SpillableKVBuffer::~SpillableKVBuffer() = default;

Status SpillableKVBuffer::Add(std::string_view key, std::string_view value) {
  return collector_.Add(key, value);
}

Status SpillableKVBuffer::AddBatch(std::string_view batch) {
  return collector_.AddBatch(batch);
}

Result<std::unique_ptr<KVGroupIterator>> SpillableKVBuffer::Finish() {
  DMB_ASSIGN_OR_RETURN(auto iterators, collector_.FinishIterators());
  return std::move(iterators[0]);
}

}  // namespace dmb::datampi
