// Growable byte buffer with append/read cursors, used for record batches,
// spill files, and the mpilite message payloads.

#ifndef DATAMPI_BENCH_COMMON_BYTE_BUFFER_H_
#define DATAMPI_BENCH_COMMON_BYTE_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dmb {

/// \brief Append-only growable byte buffer (write side).
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(size_t reserve) { data_.reserve(reserve); }

  void Append(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    data_.insert(data_.end(), b, b + n);
  }
  void Append(std::string_view s) { Append(s.data(), s.size()); }
  void AppendByte(uint8_t b) { data_.push_back(b); }

  /// \brief Little-endian fixed-width writes.
  void AppendU32(uint32_t v) { Append(&v, sizeof(v)); }
  void AppendU64(uint64_t v) { Append(&v, sizeof(v)); }
  void AppendI64(int64_t v) { Append(&v, sizeof(v)); }
  void AppendDouble(double v) { Append(&v, sizeof(v)); }

  /// \brief LEB128 unsigned varint.
  void AppendVarint(uint64_t v);
  /// \brief Zigzag-encoded signed varint.
  void AppendVarintSigned(int64_t v);
  /// \brief Varint length followed by raw bytes.
  void AppendLengthPrefixed(std::string_view s);

  const uint8_t* data() const { return data_.data(); }
  uint8_t* data() { return data_.data(); }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  void Clear() { data_.clear(); }
  void Reserve(size_t n) { data_.reserve(n); }
  size_t capacity() const { return data_.capacity(); }

  std::string_view view() const {
    return {reinterpret_cast<const char*>(data_.data()), data_.size()};
  }
  std::vector<uint8_t> TakeBytes() { return std::move(data_); }

 private:
  std::vector<uint8_t> data_;
};

/// \brief Read cursor over a byte range. Does not own the data.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : p_(static_cast<const uint8_t*>(data)), end_(p_ + size) {}
  explicit ByteReader(std::string_view s) : ByteReader(s.data(), s.size()) {}
  explicit ByteReader(const ByteBuffer& b) : ByteReader(b.data(), b.size()) {}

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool AtEnd() const { return p_ == end_; }

  Status ReadBytes(void* out, size_t n);
  Status ReadU32(uint32_t* out) { return ReadBytes(out, sizeof(*out)); }
  Status ReadU64(uint64_t* out) { return ReadBytes(out, sizeof(*out)); }
  Status ReadI64(int64_t* out) { return ReadBytes(out, sizeof(*out)); }
  Status ReadDouble(double* out) { return ReadBytes(out, sizeof(*out)); }
  Status ReadVarint(uint64_t* out);
  Status ReadVarintSigned(int64_t* out);
  /// \brief Reads a varint length then returns a view of that many bytes
  /// (zero-copy; the view aliases the underlying data).
  Status ReadLengthPrefixed(std::string_view* out);

  /// \brief Returns a zero-copy view of the next `n` bytes.
  Status ReadView(size_t n, std::string_view* out);

 private:
  const uint8_t* p_;
  const uint8_t* end_;
};

}  // namespace dmb

#endif  // DATAMPI_BENCH_COMMON_BYTE_BUFFER_H_
