// Pluggable block codecs for the spill I/O subsystem.
//
// A run file names its codec by a one-byte id in every block header and
// in the footer, so files stay self-describing: a reader never needs
// out-of-band configuration to decode a spill. `kNone` keeps the raw
// path available (and is what an incompressible block falls back to
// regardless of the configured codec); `kLz` reuses the repo's
// self-contained LZ77 byte codec (datagen::LzCompress), which reaches
// ~2x on the Zipfian shuffle traffic the paper's workloads produce.

#ifndef DATAMPI_BENCH_IO_CODEC_H_
#define DATAMPI_BENCH_IO_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "datagen/codec.h"

namespace dmb::io {

/// \brief Block codec ids (stable on-disk values).
enum class Codec : uint8_t {
  kNone = 0,
  kLz = 1,
};

/// \brief "none" | "lz" (for logs, flags and JobSpec knobs).
const char* CodecName(Codec codec);

/// \brief Inverse of CodecName; InvalidArgument on unknown names.
Result<Codec> ParseCodec(std::string_view name);

/// \brief True for ids this build can decode (guards files written by a
/// newer build with a codec this one doesn't know).
bool IsKnownCodec(uint8_t id);

/// \brief Compresses `input` with `codec` into `out` (replaced, not
/// appended). kNone copies.
void Compress(Codec codec, std::string_view input, std::string* out);

/// \brief Stateful form of Compress: reuses the LZ match-finder arrays
/// across calls, so a block writer compressing many blocks in one
/// stream pays one hash-table allocation per stream, not per block.
class Compressor {
 public:
  /// Same contract as the free Compress.
  void Compress(Codec codec, std::string_view input, std::string* out);

 private:
  datagen::LzCompressor lz_;
};

/// \brief Decompresses `input` into exactly `raw_len` bytes, written to
/// `out` (cleared first, capacity reused — no steady-state allocation
/// when decoding many blocks into one buffer); Corruption when the
/// payload doesn't decode to that size.
Status Decompress(Codec codec, std::string_view input, size_t raw_len,
                  std::string* out);

}  // namespace dmb::io

#endif  // DATAMPI_BENCH_IO_CODEC_H_
