#include "shuffle/batch_channel.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/wait_graph.h"

namespace dmb::shuffle {

namespace {
std::string SideLabel(const char* side, int partition) {
  return std::string("channel[") + std::to_string(partition) + "] " + side;
}
}  // namespace

BatchChannelGroup::BatchChannelGroup(Options options)
    : options_(options),
      parts_(static_cast<size_t>(std::max(1, options.partitions))) {
  DMB_CHECK(options_.partitions >= 1);
  DMB_CHECK(options_.batch_records >= 1);
  DMB_CHECK(options_.max_buffered_batches >= 1);
}

Status BatchChannelGroup::Push(int partition, std::vector<KVPair> batch) {
  if (batch.empty()) return Status::OK();
  if (partition < 0 || partition >= options_.partitions) {
    return Status::InvalidArgument("batch channel: partition out of range");
  }
  MutexLock lock(mu_);
  Partition& part = parts_[static_cast<size_t>(partition)];
  if (WaitGraph::enabled() && !part.closed) {
    // The pushing thread is the partition's producer: a consumer parked
    // on the data side waits on it until Close().
    WaitGraph::Global().SetSoleHolder(DataRes(partition),
                                      SideLabel("data", partition));
  }
  for (;;) {
    if (cancelled_) {
      // Consumer abort: an error status kills the producer verbatim; an
      // OK status means the consumer no longer needs the stream and the
      // batch is dropped silently.
      return cancel_status_;
    }
    if (part.closed) {
      return Status::Internal("batch channel: push after close");
    }
    if (part.queue.size() < options_.max_buffered_batches) break;
    WaitScope waiting(SpaceRes(partition),
                      SideLabel("Push backpressure", partition));
    part.space_cv.Wait(mu_);
  }
  ++batches_pushed_;
  records_pushed_ += static_cast<int64_t>(batch.size());
  part.queue.push_back(std::move(batch));
  max_buffered_seen_ = std::max(max_buffered_seen_, part.queue.size());
  part.data_cv.NotifyOne();
  return Status::OK();
}

void BatchChannelGroup::Close(int partition, const Status& status) {
  if (partition < 0 || partition >= options_.partitions) return;
  MutexLock lock(mu_);
  Partition& part = parts_[static_cast<size_t>(partition)];
  if (part.closed) return;  // the first close (and its status) wins
  part.closed = true;
  part.close_status = status;
  if (WaitGraph::enabled()) {
    // No further data is owed: waiters on the data side are about to be
    // notified and must not point at the (departing) producer.
    WaitGraph::Global().ClearHolders(DataRes(partition));
  }
  part.data_cv.NotifyAll();
  part.space_cv.NotifyAll();
}

void BatchChannelGroup::CloseAll(const Status& status) {
  for (int p = 0; p < options_.partitions; ++p) Close(p, status);
}

Result<bool> BatchChannelGroup::Pull(int partition,
                                     std::vector<KVPair>* batch) {
  if (partition < 0 || partition >= options_.partitions) {
    return Status::InvalidArgument("batch channel: partition out of range");
  }
  MutexLock lock(mu_);
  Partition& part = parts_[static_cast<size_t>(partition)];
  if (WaitGraph::enabled()) {
    // The pulling thread is the partition's consumer: a producer parked
    // on backpressure waits on it to drain the queue.
    WaitGraph::Global().SetSoleHolder(SpaceRes(partition),
                                      SideLabel("space", partition));
  }
  for (;;) {
    if (!part.queue.empty()) {
      *batch = std::move(part.queue.front());
      part.queue.pop_front();
      part.space_cv.NotifyOne();
      return true;
    }
    if (part.closed) {
      // Buffered batches drain first, then the close status surfaces:
      // a clean end returns false, a producer failure propagates
      // verbatim. Either way this consumer is done with the partition.
      if (WaitGraph::enabled()) {
        WaitGraph::Global().ClearHolders(SpaceRes(partition));
      }
      DMB_RETURN_NOT_OK(part.close_status);
      return false;
    }
    if (cancelled_ && !cancel_status_.ok()) {
      if (WaitGraph::enabled()) {
        WaitGraph::Global().ClearHolders(SpaceRes(partition));
      }
      return cancel_status_;
    }
    WaitScope waiting(DataRes(partition), SideLabel("Pull drain", partition));
    part.data_cv.Wait(mu_);
  }
}

void BatchChannelGroup::Cancel(const Status& status) {
  MutexLock lock(mu_);
  if (cancelled_) return;
  cancelled_ = true;
  cancel_status_ = status;
  for (int p = 0; p < options_.partitions; ++p) {
    if (WaitGraph::enabled()) {
      // Every parked endpoint is about to be released with the cancel
      // status; nobody owes anybody progress on this group anymore.
      WaitGraph::Global().ClearHolders(DataRes(p));
      WaitGraph::Global().ClearHolders(SpaceRes(p));
    }
    Partition& part = parts_[static_cast<size_t>(p)];
    part.data_cv.NotifyAll();
    part.space_cv.NotifyAll();
  }
}

size_t BatchChannelGroup::max_buffered_batches_seen() const {
  MutexLock lock(mu_);
  return max_buffered_seen_;
}

int64_t BatchChannelGroup::batches_pushed() const {
  MutexLock lock(mu_);
  return batches_pushed_;
}

int64_t BatchChannelGroup::records_pushed() const {
  MutexLock lock(mu_);
  return records_pushed_;
}

BatchStreamWriter::BatchStreamWriter(BatchChannelGroup* sink, int partition)
    : sink_(sink), partition_(partition) {
  batch_.reserve(sink_->batch_records());
}

Status BatchStreamWriter::Add(std::string_view key, std::string_view value) {
  batch_.push_back(KVPair{std::string(key), std::string(value)});
  if (batch_.size() >= sink_->batch_records()) {
    std::vector<KVPair> full;
    full.reserve(sink_->batch_records());
    batch_.swap(full);
    return sink_->Push(partition_, std::move(full));
  }
  return Status::OK();
}

Status BatchStreamWriter::Finish() {
  if (!batch_.empty()) {
    DMB_RETURN_NOT_OK(sink_->Push(partition_, std::move(batch_)));
    batch_.clear();
  }
  sink_->Close(partition_, Status::OK());
  return Status::OK();
}

Status DrainChannel(BatchChannelGroup* source, int partition,
                    const std::function<Status(std::string_view key,
                                               std::string_view value)>& fn) {
  std::vector<KVPair> batch;
  for (;;) {
    DMB_ASSIGN_OR_RETURN(bool more, source->Pull(partition, &batch));
    if (!more) return Status::OK();
    for (const KVPair& kv : batch) {
      DMB_RETURN_NOT_OK(fn(kv.key, kv.value));
    }
  }
}

}  // namespace dmb::shuffle
