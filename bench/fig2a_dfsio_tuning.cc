// Figure 2(a): HDFS block-size tuning with DFSIO.
// Sweeps the block size over 64..512 MB for total file sizes 5..20 GB
// and prints the DFSIO throughput; the paper picks 256 MB as the best.

#include <vector>

#include "bench_util.h"
#include "dfs/dfsio.h"

int main() {
  using namespace dmb;
  using namespace dmb::bench;
  PrintTestbed(std::cout);
  std::cout << "Paper reference: throughput peaks at 256 MB blocks for "
               "every file size (Figure 2a).\n";

  PrintBanner(std::cout, "Figure 2(a): DFSIO write throughput (MB/s)");
  const std::vector<int> block_sizes = {64, 128, 256, 512};
  const std::vector<int> file_gb = {5, 10, 15, 20};

  std::vector<std::string> header = {"file size"};
  for (int b : block_sizes) header.push_back(std::to_string(b) + "MB blk");
  header.push_back("best");
  TablePrinter table(header);

  for (int gb : file_gb) {
    std::vector<std::string> row = {std::to_string(gb) + " GB"};
    double best = -1;
    int best_block = 0;
    for (int block : block_sizes) {
      dfs::DfsioOptions options;
      options.total_bytes = static_cast<int64_t>(gb) * kGiB;
      options.dfs.block_size_bytes = static_cast<int64_t>(block) << 20;
      const auto result = dfs::RunDfsio(options);
      row.push_back(TablePrinter::Num(result.throughput_mbps, 1));
      if (result.throughput_mbps > best) {
        best = result.throughput_mbps;
        best_block = block;
      }
    }
    row.push_back(std::to_string(best_block) + "MB");
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "Figure 2(a) extension: DFSIO read throughput");
  TablePrinter read_table({"file size", "256MB blk read MB/s"});
  for (int gb : file_gb) {
    dfs::DfsioOptions options;
    options.total_bytes = static_cast<int64_t>(gb) * kGiB;
    options.read_mode = true;
    const auto result = dfs::RunDfsio(options);
    read_table.AddRow({std::to_string(gb) + " GB",
                       TablePrinter::Num(result.throughput_mbps, 1)});
  }
  read_table.Print(std::cout);
  return 0;
}
