// Figure 6: application benchmarks.
//   (a) K-means first training iteration, 8-64 GB (all three systems;
//       paper: DataMPI up to 39% over Hadoop, up to 33% over Spark).
//   (b) Naive Bayes training pipeline, 8-64 GB (Hadoop vs DataMPI only;
//       paper: DataMPI ~33% over Hadoop on average).

#include "bench_util.h"

int main() {
  using namespace dmb;
  using namespace dmb::bench;
  using simfw::Framework;
  PrintTestbed(std::cout);
  std::cout << "Paper reference: K-means (first iteration incl. load + "
               "output): DataMPI at most 39% over Hadoop and 33% over "
               "Spark; Naive Bayes: DataMPI ~33% over Hadoop (no Spark "
               "implementation in BigDataBench 2.1).\n";

  PrintBanner(std::cout, "Figure 6(a): K-means (first iteration)");
  {
    TablePrinter table({"data (GB)", "Hadoop (s)", "Spark (s)",
                        "DataMPI (s)", "DataMPI vs Hadoop",
                        "DataMPI vs Spark"});
    for (int gb : {8, 16, 32, 64}) {
      const int64_t bytes = static_cast<int64_t>(gb) * kGiB;
      simfw::ExperimentOptions options;
      const auto h = simfw::SimulateWorkload(Framework::kHadoop,
                                             simfw::KmeansProfile(), bytes,
                                             options);
      const auto s = simfw::SimulateWorkload(Framework::kSpark,
                                             simfw::KmeansProfile(), bytes,
                                             options);
      const auto d = simfw::SimulateWorkload(Framework::kDataMPI,
                                             simfw::KmeansProfile(), bytes,
                                             options);
      table.AddRow(
          {std::to_string(gb), Cell(h.job), Cell(s.job), Cell(d.job),
           TablePrinter::Pct(ImprovementOver(d.job.seconds, h.job.seconds)),
           TablePrinter::Pct(ImprovementOver(d.job.seconds, s.job.seconds))});
    }
    table.Print(std::cout);
  }

  PrintBanner(std::cout, "Figure 6(b): Naive Bayes (training pipeline)");
  {
    TablePrinter table({"data (GB)", "Hadoop (s)", "DataMPI (s)",
                        "DataMPI vs Hadoop"});
    double sum = 0;
    int count = 0;
    for (int gb : {8, 16, 32, 64}) {
      const int64_t bytes = static_cast<int64_t>(gb) * kGiB;
      simfw::ExperimentOptions options;
      const auto h = simfw::SimulateWorkload(Framework::kHadoop,
                                             simfw::NaiveBayesProfile(),
                                             bytes, options);
      const auto d = simfw::SimulateWorkload(Framework::kDataMPI,
                                             simfw::NaiveBayesProfile(),
                                             bytes, options);
      const double improvement =
          ImprovementOver(d.job.seconds, h.job.seconds);
      sum += improvement;
      ++count;
      table.AddRow({std::to_string(gb), Cell(h.job), Cell(d.job),
                    TablePrinter::Pct(improvement)});
    }
    table.Print(std::cout);
    std::cout << "Average DataMPI improvement: "
              << TablePrinter::Pct(sum / count) << " (paper: ~33%)\n";
  }
  return 0;
}
