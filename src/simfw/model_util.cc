#include "simfw/model_util.h"

#include <algorithm>

namespace dmb::simfw::internal {

sim::Proc RunTransfer(sim::FluidSystem::Transfer t) { co_await t; }

JobBytes ComputeJobBytes(const WorkloadProfile& profile, double data_mb) {
  JobBytes b;
  b.disk_in_mb = data_mb * profile.disk_in_ratio;
  b.logical_mb = data_mb * profile.logical_ratio;
  b.shuffle_mb = b.logical_mb * profile.shuffle_ratio;
  b.out_logical_mb = b.logical_mb * profile.output_ratio;
  b.out_disk_mb = b.out_logical_mb * profile.output_disk_ratio;
  b.logical_per_disk =
      profile.disk_in_ratio > 0
          ? profile.logical_ratio / profile.disk_in_ratio
          : 1.0;
  return b;
}

std::vector<std::unique_ptr<sim::Semaphore>> MakeSlots(sim::Simulator* sim,
                                                       int nodes, int slots) {
  std::vector<std::unique_ptr<sim::Semaphore>> out;
  out.reserve(static_cast<size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    out.push_back(std::make_unique<sim::Semaphore>(sim, slots));
  }
  return out;
}

double OvercommitSpillFactor(int slots_per_node) {
  return 1.0 + 0.25 * std::max(0, slots_per_node - 4);
}

double OvercommitCpuFactor(int slots_per_node, double penalty) {
  return 1.0 + penalty * std::max(0, slots_per_node - 4);
}

}  // namespace dmb::simfw::internal
