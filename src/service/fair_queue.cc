#include "service/fair_queue.h"

namespace dmb::service {

void WeightedFairQueue::SetWeight(const std::string& tenant, double weight) {
  if (weight <= 0.0) weight = 1.0;
  tenants_[tenant].weight = weight;
}

void WeightedFairQueue::Push(const QueueItem& item) {
  TenantState& state = tenants_[item.tenant];
  OrderKey key{-item.priority, next_seq_++};
  state.queued.emplace(key, item);
  state.queued_bytes += item.charge_bytes;
  index_.emplace(item.id, std::make_pair(item.tenant, key));
  ++size_;
}

std::optional<QueueItem> WeightedFairQueue::PopNext(
    const std::function<bool(const QueueItem&)>& admissible) {
  TenantState* best = nullptr;
  double best_ratio = 0.0;
  uint64_t best_seq = 0;
  for (auto& [name, state] : tenants_) {
    if (state.queued.empty()) continue;
    const QueueItem& head = state.queued.begin()->second;
    if (admissible && !admissible(head)) continue;
    const double ratio = static_cast<double>(state.running) / state.weight;
    const uint64_t seq = state.queued.begin()->first.second;
    if (best == nullptr || ratio < best_ratio ||
        (ratio == best_ratio && seq < best_seq)) {
      best = &state;
      best_ratio = ratio;
      best_seq = seq;
    }
  }
  if (best == nullptr) return std::nullopt;
  auto it = best->queued.begin();
  QueueItem item = std::move(it->second);
  best->queued_bytes -= item.charge_bytes;
  best->queued.erase(it);
  ++best->running;
  index_.erase(item.id);
  --size_;
  return item;
}

bool WeightedFairQueue::Remove(uint64_t id) {
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  TenantState& state = tenants_[it->second.first];
  auto qit = state.queued.find(it->second.second);
  if (qit != state.queued.end()) {
    state.queued_bytes -= qit->second.charge_bytes;
    state.queued.erase(qit);
    --size_;
  }
  index_.erase(it);
  return true;
}

void WeightedFairQueue::Release(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end() && it->second.running > 0) --it->second.running;
}

int WeightedFairQueue::Running(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.running;
}

size_t WeightedFairQueue::TenantQueued(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.queued.size();
}

int64_t WeightedFairQueue::TenantQueuedBytes(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.queued_bytes;
}

}  // namespace dmb::service
