#include "shuffle/collector.h"

#include <utility>

#include "common/byte_buffer.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/units.h"
#include "core/kv.h"
#include "io/run_file.h"

namespace dmb::shuffle {

PartitionedCollector::PartitionedCollector(CollectorOptions options)
    : options_(std::move(options)),
      arena_(std::make_shared<KVArena>()),
      partitions_(static_cast<size_t>(options_.num_partitions)),
      spill_files_(static_cast<size_t>(options_.num_partitions)) {
  DMB_CHECK(options_.num_partitions >= 1);
  DMB_CHECK(options_.partitioner != nullptr || options_.num_partitions == 1);
  // One knob arms the whole intra-task pipeline: spill writers overlap
  // block encoding on the same context unless the caller tuned them
  // separately.
  if (options_.parallel != nullptr && options_.spill_io.parallel == nullptr) {
    options_.spill_io.parallel = options_.parallel;
  }
}

PartitionedCollector::~PartitionedCollector() = default;

const TempDir* PartitionedCollector::dir() {
  if (options_.spill_dir != nullptr) return options_.spill_dir;
  if (!owned_dir_) owned_dir_ = std::make_unique<TempDir>("dmb-shuffle");
  return owned_dir_.get();
}

int64_t PartitionedCollector::bytes_in_memory() const {
  return arena_->bytes() + records_in_memory_ * kRecordOverheadBytes;
}

void PartitionedCollector::RouteStaged() {
  const size_t n = staged_.size();
  if (n == 0) return;
  staged_keys_.resize(n);
  staged_parts_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    staged_keys_[i] = arena_->KeyOf(staged_[i]);
  }
  options_.partitioner->PartitionBatch(staged_keys_.data(), n,
                                       options_.num_partitions,
                                       staged_parts_.data());
  for (size_t i = 0; i < n; ++i) {
    partitions_[static_cast<size_t>(staged_parts_[i])].push_back(staged_[i]);
  }
  staged_.clear();
}

Status PartitionedCollector::Add(std::string_view key,
                                 std::string_view value) {
  if (finished_) {
    return Status::FailedPrecondition("Add after Finish");
  }
  if (options_.num_partitions == 1) {
    partitions_[0].push_back(arena_->Add(key, value));
  } else {
    staged_.push_back(arena_->Add(key, value));
    if (staged_.size() >= kRouteBatchRecords) RouteStaged();
  }
  ++records_added_;
  ++records_in_memory_;
  bytes_added_ += static_cast<int64_t>(key.size() + value.size());
  encoded_input_bytes_ += EncodedKVSize(key.size(), value.size());
  if (bytes_in_memory() > options_.memory_budget_bytes) {
    switch (options_.on_budget) {
      case BudgetAction::kSpill:
        if (spilling_enabled()) return SpillAll();
        break;
      case BudgetAction::kFail:
        return Status::OutOfMemory(
            "shuffle collector over budget: " +
            FormatBytes(bytes_in_memory()) + " resident > " +
            FormatBytes(options_.memory_budget_bytes) + " budget");
      case BudgetAction::kUnbounded:
        break;
    }
  }
  return Status::OK();
}

Status PartitionedCollector::AddBatch(std::string_view batch) {
  datampi::KVBatchReader reader(batch);
  std::string_view k, v;
  while (reader.Next(&k, &v)) {
    DMB_RETURN_NOT_OK(Add(k, v));
  }
  return reader.status();
}

Status PartitionedCollector::AddBatch(
    const std::pair<std::string, std::string>* records, size_t n) {
  // Add() stages multi-partition records, so the whole batch routes
  // through PartitionBatch in kRouteBatchRecords chunks.
  for (size_t i = 0; i < n; ++i) {
    DMB_RETURN_NOT_OK(Add(records[i].first, records[i].second));
  }
  return Status::OK();
}

void PartitionedCollector::SortSlices(std::vector<KVSlice>* slices) {
  int64_t spawned = 0;
  arena_->Sort(slices, options_.parallel, &spawned);
  if (spawned != 0) {
    parallel_tasks_.fetch_add(spawned, std::memory_order_relaxed);
  }
}

std::vector<KVSlice> PartitionedCollector::CombineResident(size_t p,
                                                           KVArena* out) {
  auto& slices = partitions_[p];
  std::vector<KVSlice> combined;
  if (slices.empty()) return combined;
  SortSlices(&slices);
  std::vector<std::string> values;
  size_t i = 0;
  while (i < slices.size()) {
    const std::string_view key = arena_->KeyOf(slices[i]);
    values.clear();
    while (i < slices.size() && arena_->KeyOf(slices[i]) == key) {
      values.emplace_back(arena_->ValueOf(slices[i]));
      ++i;
    }
    combined.push_back(out->Add(key, options_.combiner(key, values)));
  }
  return combined;
}

Status PartitionedCollector::ForEachResident(
    size_t p, const std::function<Status(std::string_view key,
                                         std::string_view value)>& sink) {
  auto& slices = partitions_[p];
  if (options_.sort_by_key && options_.combiner) {
    KVArena combined;
    for (const KVSlice& s : CombineResident(p, &combined)) {
      DMB_RETURN_NOT_OK(sink(combined.KeyOf(s), combined.ValueOf(s)));
    }
  } else {
    // Unsorted collectors emit in arrival order without grouping
    // (only reachable through FinishRuns; combiners require sorting).
    if (options_.sort_by_key) SortSlices(&slices);
    for (const KVSlice& s : slices) {
      DMB_RETURN_NOT_OK(sink(arena_->KeyOf(s), arena_->ValueOf(s)));
    }
  }
  return Status::OK();
}

std::string PartitionedCollector::EncodeResident(size_t p) {
  if (partitions_[p].empty()) return {};
  ByteBuffer wire;
  const Status st =
      ForEachResident(p, [&wire](std::string_view key, std::string_view value) {
        datampi::EncodeKV(&wire, key, value);
        return Status::OK();
      });
  DMB_CHECK(st.ok());  // the encoding sink cannot fail
  encoded_output_bytes_ += static_cast<int64_t>(wire.size());
  return std::string(wire.view());
}

std::string PartitionedCollector::NextRunPath() {
  return dir()->File(options_.file_prefix + "run-" +
                     std::to_string(spill_count_++) + ".kv");
}

Status PartitionedCollector::WriteRunFileTo(size_t p, const std::string& path,
                                            int64_t* raw_bytes,
                                            int64_t* file_bytes,
                                            int64_t* overlapped_blocks) {
  io::SpillFileWriter writer(path, options_.spill_io);
  DMB_RETURN_NOT_OK(ForEachResident(
      p, [&writer](std::string_view key, std::string_view value) {
        return writer.Add(key, value);
      }));
  DMB_RETURN_NOT_OK(writer.Finish());
  *raw_bytes = writer.raw_bytes();
  *file_bytes = writer.file_bytes();
  *overlapped_blocks = writer.overlapped_blocks();
  return Status::OK();
}

Result<std::string> PartitionedCollector::WriteRunFile(size_t p) {
  if (partitions_[p].empty()) return std::string();
  const std::string path = NextRunPath();
  int64_t raw_bytes = 0;
  int64_t file_bytes = 0;
  int64_t overlapped_blocks = 0;
  DMB_RETURN_NOT_OK(
      WriteRunFileTo(p, path, &raw_bytes, &file_bytes, &overlapped_blocks));
  spilled_raw_bytes_ += raw_bytes;
  spilled_bytes_ += file_bytes;
  encoded_output_bytes_ += raw_bytes;
  parallel_tasks_.fetch_add(overlapped_blocks, std::memory_order_relaxed);
  return path;
}

Status PartitionedCollector::WriteAllRunFiles(std::vector<std::string>* paths) {
  paths->assign(partitions_.size(), std::string());
  size_t non_empty = 0;
  for (const auto& slices : partitions_) {
    if (!slices.empty()) ++non_empty;
  }
  ParallelContext* ctx = options_.parallel;
  if (ctx == nullptr || !ctx->enabled() || non_empty <= 1) {
    for (size_t p = 0; p < partitions_.size(); ++p) {
      DMB_ASSIGN_OR_RETURN((*paths)[p], WriteRunFile(p));
    }
    return Status::OK();
  }
  // Mint run-file names serially in partition order — exactly the names
  // the serial loop would produce — then write the partitions
  // concurrently. Each task touches only its own partition's slices and
  // its own writer; shared counters fold afterwards in partition order,
  // so every stat and every file byte matches the serial path.
  struct SpillResult {
    int64_t raw_bytes = 0;
    int64_t file_bytes = 0;
    int64_t overlapped_blocks = 0;
    Status status;
  };
  std::vector<SpillResult> results(partitions_.size());
  for (size_t p = 0; p < partitions_.size(); ++p) {
    if (!partitions_[p].empty()) (*paths)[p] = NextRunPath();
  }
  {
    TaskGroup group(ctx);
    for (size_t p = 0; p < partitions_.size(); ++p) {
      if ((*paths)[p].empty()) continue;
      SpillResult* result = &results[p];
      const std::string* path = &(*paths)[p];
      group.Run([this, p, path, result] {
        result->status =
            WriteRunFileTo(p, *path, &result->raw_bytes, &result->file_bytes,
                           &result->overlapped_blocks);
      });
    }
    group.Wait();
    parallel_tasks_.fetch_add(group.spawned(), std::memory_order_relaxed);
  }
  for (size_t p = 0; p < partitions_.size(); ++p) {
    if ((*paths)[p].empty()) continue;
    DMB_RETURN_NOT_OK(results[p].status);
    spilled_raw_bytes_ += results[p].raw_bytes;
    spilled_bytes_ += results[p].file_bytes;
    encoded_output_bytes_ += results[p].raw_bytes;
    parallel_tasks_.fetch_add(results[p].overlapped_blocks,
                              std::memory_order_relaxed);
  }
  return Status::OK();
}

Status PartitionedCollector::SpillAll() {
  if (records_in_memory_ == 0) return Status::OK();
  RouteStaged();
  std::vector<std::string> paths;
  DMB_RETURN_NOT_OK(WriteAllRunFiles(&paths));
  for (size_t p = 0; p < partitions_.size(); ++p) {
    if (paths[p].empty()) continue;
    spill_files_[p].push_back(std::move(paths[p]));
    partitions_[p].clear();
  }
  records_in_memory_ = 0;
  arena_->Clear();
  return Status::OK();
}

Result<std::vector<std::unique_ptr<KVGroupIterator>>>
PartitionedCollector::FinishIterators() {
  if (finished_) {
    return Status::FailedPrecondition("Finish called twice");
  }
  finished_ = true;
  RouteStaged();
  const bool combine = options_.sort_by_key && options_.combiner != nullptr;
  // Sort/combine every partition's resident slices first — the
  // CPU-heavy part of sealing, fanned out across partitions when a
  // context is available. Combine mode gets a per-partition output
  // arena so concurrent tasks never share one; the combined slices are
  // parked back in partitions_[p] for the (serial, in-order) merger
  // assembly below.
  std::vector<std::shared_ptr<KVArena>> combined_arenas;
  if (options_.sort_by_key) {
    if (combine) combined_arenas.resize(partitions_.size());
    TaskGroup group(options_.parallel);
    for (size_t p = 0; p < partitions_.size(); ++p) {
      if (partitions_[p].empty()) continue;
      group.Run([this, p, combine, &combined_arenas] {
        if (combine) {
          // Combine the resident data exactly as a spill would have (so
          // the merged stream is independent of whether a spill
          // happened), but into a fresh arena run — no encode/decode
          // round trip.
          auto out = std::make_shared<KVArena>();
          partitions_[p] = CombineResident(p, out.get());
          combined_arenas[p] = std::move(out);
        } else {
          SortSlices(&partitions_[p]);
        }
      });
    }
    group.Wait();
    parallel_tasks_.fetch_add(group.spawned(), std::memory_order_relaxed);
  }
  std::vector<std::unique_ptr<KVGroupIterator>> iterators;
  iterators.reserve(partitions_.size());
  for (size_t p = 0; p < partitions_.size(); ++p) {
    if (!options_.sort_by_key) {
      DMB_CHECK(spill_files_[p].empty());
      iterators.push_back(
          RunMerger::Fifo(arena_, std::move(partitions_[p])));
      continue;
    }
    RunMerger merger;
    merger.SetParallel(options_.parallel);
    if (combine) {
      if (combined_arenas[p] != nullptr) {
        merger.AddArenaRun(combined_arenas[p], std::move(partitions_[p]));
      }
    } else {
      merger.AddArenaRun(arena_, std::move(partitions_[p]));
    }
    for (const auto& path : spill_files_[p]) {
      DMB_RETURN_NOT_OK(merger.AddFileRun(path));
    }
    iterators.push_back(merger.Merge());
  }
  // Once every partition is combined the pre-combine bytes are dead;
  // nothing above shares arena_ in that mode.
  if (combine) arena_->Clear();
  return iterators;
}

Result<std::vector<PartitionedCollector::PartitionRuns>>
PartitionedCollector::FinishRuns(bool to_disk) {
  if (finished_) {
    return Status::FailedPrecondition("Finish called twice");
  }
  finished_ = true;
  RouteStaged();
  std::vector<PartitionRuns> runs(partitions_.size());
  if (to_disk) {
    std::vector<std::string> paths;
    DMB_RETURN_NOT_OK(WriteAllRunFiles(&paths));
    for (size_t p = 0; p < partitions_.size(); ++p) {
      runs[p].run_files = std::move(spill_files_[p]);
      if (!paths[p].empty()) {
        runs[p].run_files.push_back(std::move(paths[p]));
      }
    }
  } else {
    for (size_t p = 0; p < partitions_.size(); ++p) {
      runs[p].run_files = std::move(spill_files_[p]);
      std::string encoded = EncodeResident(p);
      if (!encoded.empty()) runs[p].encoded_runs.push_back(std::move(encoded));
    }
  }
  return runs;
}

}  // namespace dmb::shuffle
