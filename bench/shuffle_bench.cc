// Shuffle micro-benchmark: arena-backed KVSlice records vs the seed
// string-pair representation on a WordCount-shaped shuffle.
//
// Both paths do the same work — collect N (word, "1") records, sort
// them by (key, value), and walk the sorted stream grouping equal keys —
// which is exactly the map-side stage-boundary hot path every engine
// runs. The seed path allocates two std::strings per record and sorts
// 64-byte string pairs; the slice path appends bytes to one KVArena and
// sorts 24-byte slices. A third column runs the full shared
// PartitionedCollector (partition-on-insert + merge) end to end.
//
// A second phase benchmarks the reduce-side merge over spilled runs:
// the same records are forced through >= 8 block-compressed run files
// (src/io spill format) and heap-merged back via StreamingRunReaders,
// reporting records merged/s and the peak resident run memory — which
// must stay bounded by num_runs x block_size, not total spill size.
//
// Usage: shuffle_bench [records] [--json <path>]

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/kv.h"
#include "io/block_file.h"
#include "shuffle/collector.h"
#include "shuffle/kv_arena.h"
#include "shuffle/run_merger.h"

namespace dmb::bench {
namespace {

/// Zipf-flavoured word ids: heavy duplication (WordCount traffic), long
/// tail of rare words.
std::vector<std::string> MakeWords(int64_t n) {
  Rng rng(20140707);  // the paper's year, for reproducibility
  std::vector<std::string> words;
  words.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const double u =
        static_cast<double>(rng.Uniform(1 << 20)) / (1 << 20);
    const auto id = static_cast<int64_t>(u * u * u * 50000);
    words.push_back("word" + std::to_string(id));
  }
  return words;
}

struct PathResult {
  double seconds = 0;
  int64_t groups = 0;
  int64_t records = 0;
};

/// The seed representation: one KVPair (two heap strings) per record,
/// sorted as string pairs.
PathResult StringPairPath(const std::vector<std::string>& words) {
  Stopwatch sw;
  std::vector<datampi::KVPair> pairs;
  pairs.reserve(words.size());
  for (const auto& w : words) {
    pairs.push_back(datampi::KVPair{w, "1"});
  }
  std::sort(pairs.begin(), pairs.end(), datampi::KVPairLess{});
  PathResult r;
  size_t i = 0;
  while (i < pairs.size()) {
    const std::string& key = pairs[i].key;
    while (i < pairs.size() && pairs[i].key == key) {
      ++r.records;
      ++i;
    }
    ++r.groups;
  }
  r.seconds = sw.ElapsedSeconds();
  return r;
}

/// The arena representation: bytes appended to one flat buffer, 24-byte
/// slices sorted over it.
PathResult ArenaSlicePath(const std::vector<std::string>& words) {
  Stopwatch sw;
  shuffle::KVArena arena;
  std::vector<shuffle::KVSlice> slices;
  slices.reserve(words.size());
  for (const auto& w : words) {
    slices.push_back(arena.Add(w, "1"));
  }
  arena.Sort(&slices);
  PathResult r;
  size_t i = 0;
  while (i < slices.size()) {
    const std::string_view key = arena.KeyOf(slices[i]);
    while (i < slices.size() && arena.KeyOf(slices[i]) == key) {
      ++r.records;
      ++i;
    }
    ++r.groups;
  }
  r.seconds = sw.ElapsedSeconds();
  return r;
}

/// The full shared shuffle path: partition-on-insert into 4 partitions,
/// merge-iterate every partition's groups (what the engines actually
/// run at the stage boundary).
PathResult CollectorPath(const std::vector<std::string>& words) {
  Stopwatch sw;
  shuffle::CollectorOptions options;
  options.num_partitions = 4;
  options.partitioner = std::make_shared<datampi::HashPartitioner>();
  options.on_budget = shuffle::BudgetAction::kUnbounded;
  shuffle::PartitionedCollector collector(std::move(options));
  PathResult r;
  for (const auto& w : words) {
    if (!collector.Add(w, "1").ok()) return r;
  }
  auto iterators = collector.FinishIterators();
  if (!iterators.ok()) return r;
  std::string key;
  std::vector<std::string> values;
  for (auto& it : *iterators) {
    while (it->NextGroup(&key, &values)) {
      r.records += static_cast<int64_t>(values.size());
      ++r.groups;
    }
  }
  r.seconds = sw.ElapsedSeconds();
  return r;
}

/// A (key, values) stream fingerprint: order-sensitive, so two streams
/// agree iff they yield the same groups in the same order.
struct StreamDigest {
  uint64_t hash = 0;
  int64_t groups = 0;
  int64_t records = 0;
  void Add(const std::string& key, const std::vector<std::string>& values) {
    hash = HashCombine(hash, Hash64(key));
    for (const auto& v : values) hash = HashCombine(hash, Hash64(v));
    ++groups;
    records += static_cast<int64_t>(values.size());
  }
};

struct MergeResult {
  Status status;
  double seconds = 0;
  int64_t runs = 0;
  int64_t spilled_raw_bytes = 0;
  int64_t spilled_disk_bytes = 0;
  int64_t blocks_read = 0;
  int64_t peak_resident_bytes = 0;
  StreamDigest digest;
};

/// Spills every record through the block-compressed run-file format
/// (budget sized for >= 8 runs), then streams the k-way merge back.
MergeResult SpillAndMergePhase(const std::vector<std::string>& words,
                               int64_t block_bytes, io::Codec codec) {
  MergeResult r;
  shuffle::CollectorOptions options;
  options.num_partitions = 1;
  options.on_budget = shuffle::BudgetAction::kSpill;
  options.spill_io.block_bytes = block_bytes;
  options.spill_io.codec = codec;
  // Aim for ~11 pressure spills + the FinishRuns flush = 12 runs, each
  // spanning many blocks (the budget is on bytes_in_memory, i.e.
  // payload + per-record overhead — the same quantity Add() checks).
  int64_t in_memory = 0;
  for (const auto& w : words) {
    in_memory += static_cast<int64_t>(w.size()) + 1 +
                 shuffle::PartitionedCollector::kRecordOverheadBytes;
  }
  options.memory_budget_bytes = std::max<int64_t>(in_memory / 11, 1);
  shuffle::PartitionedCollector collector(std::move(options));
  for (const auto& w : words) {
    r.status = collector.Add(w, "1");
    if (!r.status.ok()) return r;
  }
  auto runs = collector.FinishRuns(/*to_disk=*/true);
  if (!runs.ok()) {
    r.status = runs.status();
    return r;
  }
  r.runs = static_cast<int64_t>((*runs)[0].run_files.size());
  r.spilled_raw_bytes = collector.spilled_raw_bytes();
  r.spilled_disk_bytes = collector.spilled_bytes();

  Stopwatch sw;
  shuffle::RunMerger merger;
  for (const auto& path : (*runs)[0].run_files) {
    r.status = merger.AddFileRun(path);
    if (!r.status.ok()) return r;
  }
  auto it = merger.Merge();
  std::string key;
  std::vector<std::string> values;
  while (it->NextGroup(&key, &values)) {
    r.digest.Add(key, values);
  }
  r.status = it->status();
  if (!r.status.ok()) return r;
  r.seconds = sw.ElapsedSeconds();
  r.blocks_read = it->blocks_read();
  r.peak_resident_bytes = it->peak_resident_run_bytes();
  return r;
}

// ---- Sort section: std::sort vs MSB radix on the arena slices. ----

/// Key distributions that stress different radix behaviours: `uniform`
/// spreads records across all 256 top buckets (radix's best case),
/// `shared_prefix` makes every key agree on more than 8 leading bytes
/// (the counting passes discover single-bucket levels and the
/// comparator finishes), `skewed` duplicates a small hot key set
/// (WordCount-shaped, exercises equal-run handling).
std::vector<std::string> MakeSortKeys(std::string_view dist, int64_t n) {
  Rng rng(4022014);
  std::vector<std::string> keys;
  keys.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    if (dist == "uniform") {
      char buf[16];
      uint64_t a = rng.Next64();
      uint64_t b = rng.Next64();
      std::memcpy(buf, &a, 8);
      std::memcpy(buf + 8, &b, 8);
      keys.emplace_back(buf, sizeof(buf));
    } else if (dist == "shared_prefix") {
      keys.push_back("dmb-shuffle-2014-" + std::to_string(rng.Next64()));
    } else {  // skewed
      const double u = rng.NextDouble();
      keys.push_back("k" + std::to_string(
                               static_cast<int64_t>(u * u * u * 20000)));
    }
  }
  return keys;
}

struct SortTimings {
  double std_seconds = 0;
  double radix_seconds = 0;
  bool identical = false;  // radix output byte-identical to std::sort
};

/// Best-of-3 timing of both sorts over identical slice vectors, plus a
/// record-by-record equivalence check of the two outputs.
SortTimings TimeSorts(const std::vector<std::string>& keys) {
  shuffle::KVArena arena;
  std::vector<shuffle::KVSlice> base;
  base.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    // Distinct values force (key, value) tiebreaks among duplicates.
    base.push_back(arena.Add(keys[i], std::to_string(i & 0xFF)));
  }
  SortTimings t;
  std::vector<shuffle::KVSlice> std_out;
  std::vector<shuffle::KVSlice> radix_out;
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<shuffle::KVSlice> a = base;
    Stopwatch sw_std;
    arena.SortComparator(&a);
    const double std_s = sw_std.ElapsedSeconds();
    std::vector<shuffle::KVSlice> b = base;
    Stopwatch sw_radix;
    arena.Sort(&b);
    const double radix_s = sw_radix.ElapsedSeconds();
    if (rep == 0 || std_s < t.std_seconds) t.std_seconds = std_s;
    if (rep == 0 || radix_s < t.radix_seconds) t.radix_seconds = radix_s;
    if (rep == 0) {
      std_out = std::move(a);
      radix_out = std::move(b);
    }
  }
  t.identical = true;
  for (size_t i = 0; i < std_out.size(); ++i) {
    // Compare record bytes, not slice offsets: fully equal records may
    // legitimately land in either order (neither sort is stable).
    if (arena.KeyOf(std_out[i]) != arena.KeyOf(radix_out[i]) ||
        arena.ValueOf(std_out[i]) != arena.ValueOf(radix_out[i])) {
      t.identical = false;
      break;
    }
  }
  return t;
}

// ---- Threads axis: the same phases at 1 thread vs the machine. ----

/// Serial vs parallel arena sort over identical slice vectors, best of
/// 3, with a record-by-record equivalence check (the parallel sort is
/// byte-identical to the serial one by contract).
struct AxisSortTimings {
  double serial_seconds = 0;
  double parallel_seconds = 0;
  int64_t spawned = 0;
  bool identical = false;
};

AxisSortTimings TimeSortAxis(const std::vector<std::string>& keys,
                             ParallelContext* parallel) {
  shuffle::KVArena arena;
  std::vector<shuffle::KVSlice> base;
  base.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    base.push_back(arena.Add(keys[i], std::to_string(i & 0xFF)));
  }
  AxisSortTimings t;
  std::vector<shuffle::KVSlice> serial_out;
  std::vector<shuffle::KVSlice> parallel_out;
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<shuffle::KVSlice> a = base;
    Stopwatch sw_serial;
    arena.Sort(&a);
    const double serial_s = sw_serial.ElapsedSeconds();
    std::vector<shuffle::KVSlice> b = base;
    int64_t spawned = 0;
    Stopwatch sw_parallel;
    arena.Sort(&b, parallel, &spawned);
    const double parallel_s = sw_parallel.ElapsedSeconds();
    if (rep == 0 || serial_s < t.serial_seconds) t.serial_seconds = serial_s;
    if (rep == 0 || parallel_s < t.parallel_seconds) {
      t.parallel_seconds = parallel_s;
    }
    if (rep == 0) {
      t.spawned = spawned;
      serial_out = std::move(a);
      parallel_out = std::move(b);
    }
  }
  t.identical = true;
  for (size_t i = 0; i < serial_out.size(); ++i) {
    if (arena.KeyOf(serial_out[i]) != arena.KeyOf(parallel_out[i]) ||
        arena.ValueOf(serial_out[i]) != arena.ValueOf(parallel_out[i])) {
      t.identical = false;
      break;
    }
  }
  return t;
}

/// Collector-to-sealed-runs plus the k-way merge back, with an optional
/// ParallelContext: 4 hash partitions under spill pressure, everything
/// forced to disk, then every partition merged in order into one
/// order-sensitive digest. Serial and parallel runs partition and sort
/// identically, so their digests must agree exactly.
struct SealedRunsResult {
  Status status;
  double collect_seconds = 0;  // Add() loop + FinishRuns(to_disk)
  double merge_seconds = 0;
  int64_t runs = 0;
  int64_t parallel_tasks = 0;
  StreamDigest digest;
};

SealedRunsResult CollectorToSealedRuns(const std::vector<std::string>& words,
                                       ParallelContext* parallel) {
  SealedRunsResult r;
  shuffle::CollectorOptions options;
  options.num_partitions = 4;
  options.partitioner = std::make_shared<datampi::HashPartitioner>();
  options.on_budget = shuffle::BudgetAction::kSpill;
  options.spill_io.block_bytes = 16 << 10;
  options.spill_io.codec = io::Codec::kLz;
  options.parallel = parallel;
  int64_t in_memory = 0;
  for (const auto& w : words) {
    in_memory += static_cast<int64_t>(w.size()) + 1 +
                 shuffle::PartitionedCollector::kRecordOverheadBytes;
  }
  options.memory_budget_bytes = std::max<int64_t>(in_memory / 11, 1);
  shuffle::PartitionedCollector collector(std::move(options));
  Stopwatch sw;
  for (const auto& w : words) {
    r.status = collector.Add(w, "1");
    if (!r.status.ok()) return r;
  }
  auto runs = collector.FinishRuns(/*to_disk=*/true);
  if (!runs.ok()) {
    r.status = runs.status();
    return r;
  }
  r.collect_seconds = sw.ElapsedSeconds();
  r.parallel_tasks = collector.parallel_tasks();

  Stopwatch merge_sw;
  for (const auto& part : *runs) {
    shuffle::RunMerger merger;
    merger.SetParallel(parallel);
    for (const auto& path : part.run_files) {
      r.status = merger.AddFileRun(path);
      if (!r.status.ok()) return r;
    }
    r.runs += static_cast<int64_t>(part.run_files.size());
    auto it = merger.Merge();
    std::string key;
    std::vector<std::string> values;
    while (it->NextGroup(&key, &values)) {
      r.digest.Add(key, values);
    }
    r.status = it->status();
    if (!r.status.ok()) return r;
  }
  r.merge_seconds = merge_sw.ElapsedSeconds();
  return r;
}

/// The in-memory oracle of the merge phase: same records, never spilled.
Result<StreamDigest> InMemoryDigest(const std::vector<std::string>& words) {
  StreamDigest digest;
  shuffle::CollectorOptions options;
  options.num_partitions = 1;
  options.on_budget = shuffle::BudgetAction::kUnbounded;
  shuffle::PartitionedCollector collector(std::move(options));
  for (const auto& w : words) {
    DMB_RETURN_NOT_OK(collector.Add(w, "1"));
  }
  DMB_ASSIGN_OR_RETURN(auto iterators, collector.FinishIterators());
  std::string key;
  std::vector<std::string> values;
  while (iterators[0]->NextGroup(&key, &values)) {
    digest.Add(key, values);
  }
  DMB_RETURN_NOT_OK(iterators[0]->status());
  return digest;
}

int Run(int argc, char** argv) {
  int64_t n = 1'000'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) break;  // flags handled by BenchJson
    try {
      n = std::stoll(arg);
    } catch (const std::exception&) {
      n = 0;
    }
    if (n <= 0) {
      std::cerr << "usage: shuffle_bench [records] [--json <path>]\n";
      return 2;
    }
  }
  BenchJson json = BenchJson::FromArgs(argc, argv);

  PrintBanner(std::cout, "Shuffle representation micro-benchmark");
  std::cout << "WordCount-shaped shuffle, " << n
            << " records (collect + sort + group), best of 3 runs.\n";
  const std::vector<std::string> words = MakeWords(n);

  PathResult string_pairs, slices, collector;
  for (int rep = 0; rep < 3; ++rep) {
    const PathResult sp = StringPairPath(words);
    const PathResult sl = ArenaSlicePath(words);
    const PathResult co = CollectorPath(words);
    if (rep == 0 || sp.seconds < string_pairs.seconds) string_pairs = sp;
    if (rep == 0 || sl.seconds < slices.seconds) slices = sl;
    if (rep == 0 || co.seconds < collector.seconds) collector = co;
  }

  // All paths must agree before any timing is trusted.
  if (slices.groups != string_pairs.groups ||
      collector.groups != string_pairs.groups ||
      slices.records != string_pairs.records ||
      collector.records != string_pairs.records) {
    std::cerr << "MISMATCH between paths: string-pairs "
              << string_pairs.groups << " groups, slices " << slices.groups
              << ", collector " << collector.groups << "\n";
    return 1;
  }

  TablePrinter table({"path", "seconds", "Mrec/s", "vs string pairs"});
  auto add_row = [&](const char* name, const PathResult& r) {
    table.AddRow({name, TablePrinter::Num(r.seconds, 3),
                  TablePrinter::Num(static_cast<double>(n) / 1e6 /
                                        r.seconds,
                                    1),
                  TablePrinter::Pct(
                      ImprovementOver(r.seconds, string_pairs.seconds))});
  };
  add_row("string pairs (seed)", string_pairs);
  add_row("arena slices", slices);
  add_row("partitioned collector", collector);
  table.Print(std::cout);
  std::cout << string_pairs.groups << " distinct keys, "
            << string_pairs.records << " records grouped on every path.\n";

  // ---- Merge phase: spilled block-compressed runs, streamed back. ----
  const int64_t block_bytes = 16 << 10;
  PrintBanner(std::cout, "Reduce-side merge over spilled runs");
  MergeResult merge = SpillAndMergePhase(words, block_bytes, io::Codec::kLz);
  if (!merge.status.ok()) {
    std::cerr << "merge phase FAILED: " << merge.status << "\n";
    return 1;
  }
  if (merge.runs < 8) {
    std::cerr << "merge phase FAILED: only " << merge.runs
              << " spilled runs (need >= 8)\n";
    return 1;
  }
  const Result<StreamDigest> oracle_result = InMemoryDigest(words);
  if (!oracle_result.ok()) {
    std::cerr << "in-memory oracle FAILED: " << oracle_result.status()
              << "\n";
    return 1;
  }
  const StreamDigest& oracle = *oracle_result;
  if (merge.digest.hash != oracle.hash ||
      merge.digest.groups != oracle.groups ||
      merge.digest.records != oracle.records) {
    std::cerr << "MISMATCH: streamed merge of spilled runs disagrees with "
                 "the in-memory merge\n";
    return 1;
  }
  const int64_t peak_bound = merge.runs * block_bytes;
  const double merge_mrec_s =
      static_cast<double>(merge.digest.records) / 1e6 / merge.seconds;
  TablePrinter merge_table({"metric", "value"});
  merge_table.AddRow({"spilled runs", std::to_string(merge.runs)});
  merge_table.AddRow(
      {"spill bytes raw", FormatBytes(merge.spilled_raw_bytes)});
  merge_table.AddRow(
      {"spill bytes on disk", FormatBytes(merge.spilled_disk_bytes)});
  merge_table.AddRow({"blocks read", std::to_string(merge.blocks_read)});
  merge_table.AddRow({"merge seconds", TablePrinter::Num(merge.seconds, 3)});
  merge_table.AddRow({"merged Mrec/s", TablePrinter::Num(merge_mrec_s, 1)});
  merge_table.AddRow(
      {"peak resident run memory", FormatBytes(merge.peak_resident_bytes)});
  merge_table.AddRow({"bound (runs x block_size)", FormatBytes(peak_bound)});
  merge_table.Print(std::cout);
  std::cout << "Streamed merge output matches the in-memory merge ("
            << merge.digest.groups << " groups, checksums verified on "
            << merge.blocks_read << " blocks).\n";
  if (merge.peak_resident_bytes > peak_bound) {
    std::cerr << "REGRESSION: peak resident run memory "
              << merge.peak_resident_bytes << " exceeds runs x block_size "
              << peak_bound << "\n";
    return 1;
  }
  // Only meaningful when runs span multiple blocks; with one block per
  // run (tiny record counts) the resident set IS the whole spill.
  if (merge.blocks_read > merge.runs &&
      merge.peak_resident_bytes >= merge.spilled_raw_bytes) {
    std::cerr << "REGRESSION: merge held the whole spill resident ("
              << merge.peak_resident_bytes << " bytes vs "
              << merge.spilled_raw_bytes << " spilled)\n";
    return 1;
  }

  // ---- Sort section: comparator baseline vs MSB radix. ----
  PrintBanner(std::cout, "Arena slice sort: std::sort vs MSB radix");
  const char* kSortDists[] = {"uniform", "shared_prefix", "skewed"};
  TablePrinter sort_table(
      {"distribution", "std::sort s", "radix s", "radix speedup"});
  double uniform_speedup = 0;
  for (const char* dist : kSortDists) {
    const std::vector<std::string> keys = MakeSortKeys(dist, n);
    const SortTimings t = TimeSorts(keys);
    if (!t.identical) {
      std::cerr << "MISMATCH: radix sort output differs from std::sort on "
                << dist << " keys\n";
      return 1;
    }
    const double speedup = t.std_seconds / t.radix_seconds;
    if (std::string_view(dist) == "uniform") uniform_speedup = speedup;
    sort_table.AddRow({dist, TablePrinter::Num(t.std_seconds, 3),
                       TablePrinter::Num(t.radix_seconds, 3),
                       TablePrinter::Num(speedup, 2) + "x"});
    const std::string prefix =
        "shuffle_bench/sort/" + std::string(dist) + "/";
    json.Add(prefix + "std/" + std::to_string(n), t.std_seconds, "s");
    json.Add(prefix + "radix/" + std::to_string(n), t.radix_seconds, "s");
  }
  sort_table.Print(std::cout);
  std::cout << "Radix output verified record-identical to std::sort on "
               "every distribution.\n";
  if (uniform_speedup < 1.0) {
    std::cerr << "REGRESSION: radix sort slower than std::sort on uniform "
                 "random keys ("
              << uniform_speedup << "x)\n";
    return 1;
  }

  // ---- Threads axis: serial vs one worker per hardware thread. ----
  PrintBanner(std::cout, "Intra-task parallelism: 1 thread vs the machine");
  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  ParallelContext::Options popts;
  popts.threads = 0;  // resolve to hardware_concurrency
  ParallelContext context(popts);
  std::cout << hw << " hardware thread" << (hw == 1 ? "" : "s")
            << (context.enabled()
                    ? ": parallel columns use the shared pool.\n"
                    : ": pool disabled, parallel columns run serially.\n");

  const AxisSortTimings axis_sort =
      TimeSortAxis(MakeSortKeys("uniform", n), &context);
  if (!axis_sort.identical) {
    std::cerr << "MISMATCH: parallel sort output differs from serial\n";
    return 1;
  }
  const SealedRunsResult sealed_serial = CollectorToSealedRuns(words, nullptr);
  if (!sealed_serial.status.ok()) {
    std::cerr << "serial sealed-runs FAILED: " << sealed_serial.status << "\n";
    return 1;
  }
  const SealedRunsResult sealed_parallel =
      CollectorToSealedRuns(words, &context);
  if (!sealed_parallel.status.ok()) {
    std::cerr << "parallel sealed-runs FAILED: " << sealed_parallel.status
              << "\n";
    return 1;
  }
  if (sealed_parallel.digest.hash != sealed_serial.digest.hash ||
      sealed_parallel.digest.groups != sealed_serial.digest.groups ||
      sealed_parallel.digest.records != sealed_serial.digest.records ||
      sealed_parallel.runs != sealed_serial.runs) {
    std::cerr << "MISMATCH: parallel collector/merge disagrees with serial ("
              << sealed_parallel.digest.groups << " vs "
              << sealed_serial.digest.groups << " groups, "
              << sealed_parallel.runs << " vs " << sealed_serial.runs
              << " runs)\n";
    return 1;
  }
  if (sealed_serial.digest.records != string_pairs.records) {
    std::cerr << "MISMATCH: sealed-runs phase lost records ("
              << sealed_serial.digest.records << " vs "
              << string_pairs.records << ")\n";
    return 1;
  }

  TablePrinter axis_table({"phase", "serial s", "parallel s", "speedup"});
  auto axis_row = [&](const char* name, double serial_s, double parallel_s) {
    axis_table.AddRow({name, TablePrinter::Num(serial_s, 3),
                       TablePrinter::Num(parallel_s, 3),
                       TablePrinter::Num(serial_s / parallel_s, 2) + "x"});
  };
  axis_row("radix sort (uniform)", axis_sort.serial_seconds,
           axis_sort.parallel_seconds);
  axis_row("collector -> sealed runs", sealed_serial.collect_seconds,
           sealed_parallel.collect_seconds);
  axis_row("merge sealed runs", sealed_serial.merge_seconds,
           sealed_parallel.merge_seconds);
  axis_table.Print(std::cout);
  std::cout << "Parallel sort verified record-identical; parallel "
               "collector/merge digest matches serial ("
            << sealed_serial.digest.groups << " groups over "
            << sealed_serial.runs << " runs); "
            << sealed_parallel.parallel_tasks << " pool tasks.\n";

  json.Add("shuffle_bench/threads/sort/serial/" + std::to_string(n),
           axis_sort.serial_seconds, "s");
  json.Add("shuffle_bench/threads/sort/parallel/" + std::to_string(n),
           axis_sort.parallel_seconds, "s");
  json.Add("shuffle_bench/threads/collect/serial/" + std::to_string(n),
           sealed_serial.collect_seconds, "s");
  json.Add("shuffle_bench/threads/collect/parallel/" + std::to_string(n),
           sealed_parallel.collect_seconds, "s");
  json.Add("shuffle_bench/threads/merge/serial/" + std::to_string(n),
           sealed_serial.merge_seconds, "s");
  json.Add("shuffle_bench/threads/merge/parallel/" + std::to_string(n),
           sealed_parallel.merge_seconds, "s");

  // The speedup gates only bind where the hardware can deliver them;
  // serial correctness (digest equality above) binds everywhere.
  if (context.enabled() && hw >= 4 && n >= 1'000'000) {
    if (sealed_parallel.parallel_tasks <= 0) {
      std::cerr << "REGRESSION: parallel collector spawned no pool tasks\n";
      return 1;
    }
    const double sort_speedup =
        axis_sort.serial_seconds / axis_sort.parallel_seconds;
    if (sort_speedup < 1.5) {
      std::cerr << "REGRESSION: parallel sort speedup " << sort_speedup
                << "x < 1.5x on " << hw << " threads\n";
      return 1;
    }
    const double collect_speedup = sealed_serial.collect_seconds /
                                   sealed_parallel.collect_seconds;
    if (collect_speedup < 1.5) {
      std::cerr << "REGRESSION: collector-to-sealed-runs speedup "
                << collect_speedup << "x < 1.5x on " << hw << " threads\n";
      return 1;
    }
  }

  json.Add("shuffle_bench/string_pairs/" + std::to_string(n),
           string_pairs.seconds, "s");
  json.Add("shuffle_bench/arena_slices/" + std::to_string(n),
           slices.seconds, "s");
  json.Add("shuffle_bench/collector/" + std::to_string(n),
           collector.seconds, "s");
  json.Add("shuffle_bench/merge/seconds/" + std::to_string(n), merge.seconds,
           "s");
  json.Add("shuffle_bench/merge/records_per_s/" + std::to_string(n),
           static_cast<double>(merge.digest.records) / merge.seconds,
           "rec/s");
  json.Add("shuffle_bench/merge/runs/" + std::to_string(n),
           static_cast<double>(merge.runs), "runs");
  json.Add("shuffle_bench/merge/blocks_read/" + std::to_string(n),
           static_cast<double>(merge.blocks_read), "blocks");
  json.Add("shuffle_bench/merge/peak_resident_bytes/" + std::to_string(n),
           static_cast<double>(merge.peak_resident_bytes), "bytes");
  json.Add("shuffle_bench/merge/peak_bound_bytes/" + std::to_string(n),
           static_cast<double>(peak_bound), "bytes");
  json.Add("shuffle_bench/merge/spill_bytes_raw/" + std::to_string(n),
           static_cast<double>(merge.spilled_raw_bytes), "bytes");
  json.Add("shuffle_bench/merge/spill_bytes_on_disk/" + std::to_string(n),
           static_cast<double>(merge.spilled_disk_bytes), "bytes");
  if (!json.Write()) return 1;

  if (slices.seconds >= string_pairs.seconds) {
    std::cerr << "REGRESSION: slice path (" << slices.seconds
              << "s) not faster than string pairs ("
              << string_pairs.seconds << "s)\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dmb::bench

int main(int argc, char** argv) { return dmb::bench::Run(argc, argv); }
