#include "shuffle/kv_arena.h"

#include <algorithm>
#include <array>

namespace dmb::shuffle {

namespace {

/// Below this size a bucket is cheaper to finish with comparison sort
/// than with another counting pass.
constexpr size_t kRadixCutoff = 96;
/// key_prefix holds 8 key bytes; depth 8 means the prefix is exhausted.
constexpr int kPrefixBytes = 8;

/// Byte `depth` (0 = most significant) of the big-endian prefix.
inline unsigned PrefixByte(uint64_t prefix, int depth) {
  return static_cast<unsigned>(prefix >> (56 - 8 * depth)) & 0xFFu;
}

}  // namespace

void KVArena::SortComparator(std::vector<KVSlice>* slices) const {
  std::sort(slices->begin(), slices->end(),
            [this](const KVSlice& a, const KVSlice& b) {
              return SliceLess(a, b);
            });
}

void KVArena::Sort(std::vector<KVSlice>* slices) const {
  // American-flag MSB radix on the cached prefix bytes. Each frame is
  // one (range, depth) bucket; depth bounds the explicit recursion at
  // kPrefixBytes, so stack use is trivial.
  struct Frame {
    KVSlice* begin;
    size_t size;
    int depth;
  };
  auto comparison_sort = [this](KVSlice* begin, size_t size) {
    std::sort(begin, begin + size, [this](const KVSlice& a, const KVSlice& b) {
      return SliceLess(a, b);
    });
  };
  if (slices->size() <= kRadixCutoff) {
    comparison_sort(slices->data(), slices->size());
    return;
  }

  std::vector<Frame> stack;
  stack.push_back(Frame{slices->data(), slices->size(), 0});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.size <= kRadixCutoff) {
      // Small bucket: SliceLess resolves the remaining prefix bytes and
      // any full-key/value ties in one comparison pass.
      comparison_sort(f.begin, f.size);
      continue;
    }
    if (f.depth == kPrefixBytes) {
      // Every record here shares the whole 8-byte prefix; only the full
      // (key, value) bytes can order them.
      comparison_sort(f.begin, f.size);
      continue;
    }

    std::array<size_t, 256> count{};
    for (size_t i = 0; i < f.size; ++i) {
      ++count[PrefixByte(f.begin[i].key_prefix, f.depth)];
    }

    // Single-bucket level (heavy shared prefixes): descend without the
    // permutation pass — unless the records agree on the whole
    // remaining prefix, in which case no counting pass can separate
    // them and the comparator takes over immediately.
    if (std::any_of(count.begin(), count.end(),
                    [&](size_t c) { return c == f.size; })) {
      const uint64_t first = f.begin[0].key_prefix;
      const bool all_equal =
          std::all_of(f.begin + 1, f.begin + f.size,
                      [&](const KVSlice& s) { return s.key_prefix == first; });
      if (all_equal) {
        comparison_sort(f.begin, f.size);
      } else {
        stack.push_back(Frame{f.begin, f.size, f.depth + 1});
      }
      continue;
    }

    // bucket_next[b] is the cursor where bucket b places its next
    // element; bucket_end[b] is one past its final slot.
    std::array<size_t, 256> bucket_next;
    std::array<size_t, 256> bucket_end;
    size_t total = 0;
    for (int b = 0; b < 256; ++b) {
      bucket_next[static_cast<size_t>(b)] = total;
      total += count[static_cast<size_t>(b)];
      bucket_end[static_cast<size_t>(b)] = total;
    }

    // American-flag in-place permutation: repeatedly displace the slice
    // at the current bucket's cursor into its home bucket until the
    // element landing back here belongs here.
    for (int b = 0; b < 256; ++b) {
      const size_t bi = static_cast<size_t>(b);
      while (bucket_next[bi] < bucket_end[bi]) {
        KVSlice v = f.begin[bucket_next[bi]];
        unsigned d = PrefixByte(v.key_prefix, f.depth);
        while (d != static_cast<unsigned>(b)) {
          std::swap(v, f.begin[bucket_next[d]++]);
          d = PrefixByte(v.key_prefix, f.depth);
        }
        f.begin[bucket_next[bi]++] = v;
      }
    }

    size_t offset = 0;
    for (int b = 0; b < 256; ++b) {
      const size_t c = count[static_cast<size_t>(b)];
      if (c > 1) {
        stack.push_back(Frame{f.begin + offset, c, f.depth + 1});
      }
      offset += c;
    }
  }
}

}  // namespace dmb::shuffle
