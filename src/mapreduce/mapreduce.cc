#include "mapreduce/mapreduce.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/byte_buffer.h"
#include "common/logging.h"
#include "common/temp_dir.h"
#include "common/thread_pool.h"

namespace dmb::mapreduce {

namespace {

class MapContextImpl : public MapContext {
 public:
  MapContextImpl(int task_id, int num_reducers,
                 const datampi::Partitioner* partitioner)
      : task_id_(task_id),
        partitioner_(partitioner),
        partitions_(static_cast<size_t>(num_reducers)) {}

  void Emit(std::string_view key, std::string_view value) override {
    const int p = partitioner_->Partition(
        key, static_cast<int>(partitions_.size()));
    partitions_[static_cast<size_t>(p)].push_back(
        KVPair{std::string(key), std::string(value)});
    ++records_;
  }

  int task_id() const override { return task_id_; }

  std::vector<std::vector<KVPair>>& partitions() { return partitions_; }
  int64_t records() const { return records_; }

 private:
  int task_id_;
  const datampi::Partitioner* partitioner_;
  std::vector<std::vector<KVPair>> partitions_;
  int64_t records_ = 0;
};

class ReduceContextImpl : public ReduceContext {
 public:
  void Emit(std::string_view key, std::string_view value) override {
    out_.push_back(KVPair{std::string(key), std::string(value)});
  }
  std::vector<KVPair> Take() { return std::move(out_); }

 private:
  std::vector<KVPair> out_;
};

// Sorts a map task's partition, applies the combiner, and returns the
// encoded run bytes.
std::string PrepareRun(
    std::vector<KVPair>* pairs,
    const std::function<std::string(std::string_view,
                                    const std::vector<std::string>&)>&
        combiner) {
  std::sort(pairs->begin(), pairs->end(), datampi::KVPairLess{});
  ByteBuffer wire;
  if (combiner) {
    size_t i = 0;
    std::vector<std::string> values;
    while (i < pairs->size()) {
      const std::string& key = (*pairs)[i].key;
      values.clear();
      while (i < pairs->size() && (*pairs)[i].key == key) {
        values.push_back(std::move((*pairs)[i].value));
        ++i;
      }
      datampi::EncodeKV(&wire, key, combiner(key, values));
    }
  } else {
    for (const auto& kv : *pairs) {
      datampi::EncodeKV(&wire, kv.key, kv.value);
    }
  }
  pairs->clear();
  return std::string(wire.view());
}

struct RunStore {
  // runs[reducer] = list of encoded sorted runs (one per map task).
  std::vector<std::vector<std::string>> run_bytes;  // in-memory mode
  std::vector<std::vector<std::string>> run_files;  // disk mode (paths)
  std::mutex mu;
};

Result<MRResult> RunJob(const MRConfig& config,
                        const std::vector<KVPair>& input,
                        const MapFn& map_fn, const ReduceFn& reduce_fn) {
  MRConfig cfg = config;
  DMB_CHECK(cfg.num_map_tasks >= 1);
  DMB_CHECK(cfg.num_reduce_tasks >= 1);
  DMB_CHECK(cfg.slots >= 1);
  std::shared_ptr<const datampi::Partitioner> partitioner = cfg.partitioner;
  if (!partitioner) {
    partitioner = std::make_shared<datampi::HashPartitioner>();
  }

  TempDir spill_dir("dmb-mr");
  RunStore store;
  store.run_bytes.resize(static_cast<size_t>(cfg.num_reduce_tasks));
  store.run_files.resize(static_cast<size_t>(cfg.num_reduce_tasks));

  std::atomic<int64_t> map_records{0};
  std::atomic<int64_t> shuffle_bytes{0};
  std::atomic<int64_t> spill_count{0};
  std::vector<Status> map_status(static_cast<size_t>(cfg.num_map_tasks));

  // ---- Map phase (parallel over slots). ----
  {
    ThreadPool pool(cfg.slots);
    const size_t n = input.size();
    for (int t = 0; t < cfg.num_map_tasks; ++t) {
      pool.Submit([&, t] {
        const size_t begin = n * static_cast<size_t>(t) /
                             static_cast<size_t>(cfg.num_map_tasks);
        const size_t end = n * static_cast<size_t>(t + 1) /
                           static_cast<size_t>(cfg.num_map_tasks);
        MapContextImpl ctx(t, cfg.num_reduce_tasks, partitioner.get());
        Status st;
        for (size_t i = begin; i < end && st.ok(); ++i) {
          st = map_fn(input[i].key, input[i].value, &ctx);
        }
        if (!st.ok()) {
          map_status[static_cast<size_t>(t)] = st;
          return;
        }
        map_records.fetch_add(ctx.records(), std::memory_order_relaxed);
        for (int r = 0; r < cfg.num_reduce_tasks; ++r) {
          std::string run = PrepareRun(&ctx.partitions()[static_cast<size_t>(r)],
                                       cfg.combiner);
          if (run.empty()) continue;
          shuffle_bytes.fetch_add(static_cast<int64_t>(run.size()),
                                  std::memory_order_relaxed);
          if (cfg.spill_to_disk) {
            const std::string path = spill_dir.File(
                "map" + std::to_string(t) + "-r" + std::to_string(r) + ".run");
            Status wst = WriteFileBytes(path, run);
            if (!wst.ok()) {
              map_status[static_cast<size_t>(t)] = wst;
              return;
            }
            spill_count.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(store.mu);
            store.run_files[static_cast<size_t>(r)].push_back(path);
          } else {
            std::lock_guard<std::mutex> lock(store.mu);
            store.run_bytes[static_cast<size_t>(r)].push_back(std::move(run));
          }
        }
      });
    }
    pool.Wait();
  }
  for (const auto& st : map_status) {
    DMB_RETURN_NOT_OK(st);
  }

  // ---- Barrier: reduces start only now (Hadoop semantics). ----
  MRResult result;
  result.reduce_outputs.resize(static_cast<size_t>(cfg.num_reduce_tasks));
  std::atomic<int64_t> reduce_in{0}, reduce_out{0};
  std::vector<Status> reduce_status(
      static_cast<size_t>(cfg.num_reduce_tasks));
  {
    ThreadPool pool(cfg.slots);
    for (int r = 0; r < cfg.num_reduce_tasks; ++r) {
      pool.Submit([&, r] {
        // Fetch + merge the sorted runs for partition r.
        std::vector<KVPair> merged;
        auto add_run = [&](const std::string& bytes) -> Status {
          DMB_ASSIGN_OR_RETURN(std::vector<KVPair> pairs,
                               datampi::DecodeKVBatch(bytes));
          merged.insert(merged.end(),
                        std::make_move_iterator(pairs.begin()),
                        std::make_move_iterator(pairs.end()));
          return Status::OK();
        };
        Status st;
        if (cfg.spill_to_disk) {
          for (const auto& path : store.run_files[static_cast<size_t>(r)]) {
            auto bytes = ReadFileBytes(path);
            st = bytes.ok() ? add_run(*bytes) : bytes.status();
            if (!st.ok()) break;
          }
        } else {
          for (const auto& bytes : store.run_bytes[static_cast<size_t>(r)]) {
            st = add_run(bytes);
            if (!st.ok()) break;
          }
        }
        if (!st.ok()) {
          reduce_status[static_cast<size_t>(r)] = st;
          return;
        }
        // Runs are individually sorted; a full sort here is the merge.
        std::sort(merged.begin(), merged.end(), datampi::KVPairLess{});
        reduce_in.fetch_add(static_cast<int64_t>(merged.size()),
                            std::memory_order_relaxed);
        ReduceContextImpl ctx;
        size_t i = 0;
        std::vector<std::string> values;
        while (i < merged.size() && st.ok()) {
          const std::string key = merged[i].key;
          values.clear();
          while (i < merged.size() && merged[i].key == key) {
            values.push_back(std::move(merged[i].value));
            ++i;
          }
          st = reduce_fn(key, values, &ctx);
        }
        if (!st.ok()) {
          reduce_status[static_cast<size_t>(r)] = st;
          return;
        }
        auto out = ctx.Take();
        reduce_out.fetch_add(static_cast<int64_t>(out.size()),
                             std::memory_order_relaxed);
        result.reduce_outputs[static_cast<size_t>(r)] = std::move(out);
      });
    }
    pool.Wait();
  }
  for (const auto& st : reduce_status) {
    DMB_RETURN_NOT_OK(st);
  }

  result.stats.map_output_records = map_records.load();
  result.stats.shuffle_bytes = shuffle_bytes.load();
  result.stats.spill_count = spill_count.load();
  result.stats.reduce_input_records = reduce_in.load();
  result.stats.output_records = reduce_out.load();
  return result;
}

}  // namespace

std::vector<KVPair> MRResult::Merged() const {
  std::vector<KVPair> all;
  for (const auto& part : reduce_outputs) {
    all.insert(all.end(), part.begin(), part.end());
  }
  return all;
}

Result<MRResult> RunMapReduce(const MRConfig& config,
                              const std::vector<std::string>& input,
                              const MapFn& map_fn,
                              const ReduceFn& reduce_fn) {
  std::vector<KVPair> kv_input;
  kv_input.reserve(input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    kv_input.push_back(KVPair{std::to_string(i), input[i]});
  }
  return RunJob(config, kv_input, map_fn, reduce_fn);
}

Result<MRResult> RunMapReduceKV(const MRConfig& config,
                                const std::vector<KVPair>& input,
                                const MapFn& map_fn,
                                const ReduceFn& reduce_fn) {
  return RunJob(config, input, map_fn, reduce_fn);
}

}  // namespace dmb::mapreduce
