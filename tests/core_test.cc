// Tests for the DataMPI core library: KV encoding, partitioners, the
// spillable buffer / external merge, and the bipartite job engine.

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/temp_dir.h"
#include "core/job.h"
#include "core/kv.h"
#include "core/kv_buffer.h"
#include "core/partitioner.h"

namespace dmb::datampi {
namespace {

/// "<prefix><n>" test keys. Built by append instead of
/// operator+(const char*, std::string&&), which GCC 12 flags with a
/// -Wrestrict false positive at -O3.
std::string NumberedKey(const char* prefix, int64_t n) {
  std::string key(prefix);
  key.append(std::to_string(n));
  return key;
}

// ---- KV batch encoding ----

TEST(KvTest, BatchRoundTrip) {
  ByteBuffer buf;
  EncodeKV(&buf, "alpha", "1");
  EncodeKV(&buf, "", "empty-key");
  EncodeKV(&buf, "beta", "");
  auto decoded = DecodeKVBatch(buf.view());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[0].key, "alpha");
  EXPECT_EQ((*decoded)[1].value, "empty-key");
  EXPECT_EQ((*decoded)[2].value, "");
}

TEST(KvTest, TruncatedBatchIsCorruption) {
  ByteBuffer buf;
  EncodeKV(&buf, "key", "value");
  std::string_view whole = buf.view();
  auto bad = DecodeKVBatch(whole.substr(0, whole.size() - 2));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
}

TEST(KvTest, BinaryKeysAndValuesSurvive) {
  ByteBuffer buf;
  const std::string key("\x00\x01\xff\x7f", 4);
  const std::string value(1000, '\xAB');
  EncodeKV(&buf, key, value);
  auto decoded = DecodeKVBatch(buf.view());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0].key, key);
  EXPECT_EQ((*decoded)[0].value, value);
}

// ---- Partitioners ----

TEST(PartitionerTest, HashIsStableAndInRange) {
  HashPartitioner hp;
  for (int parts : {1, 2, 7, 32}) {
    for (int i = 0; i < 1000; ++i) {
      const std::string key = NumberedKey("key-", i);
      const int p = hp.Partition(key, parts);
      EXPECT_GE(p, 0);
      EXPECT_LT(p, parts);
      EXPECT_EQ(p, hp.Partition(key, parts)) << "unstable";
    }
  }
}

TEST(PartitionerTest, HashSpreadsKeysRoughlyEvenly) {
  HashPartitioner hp;
  constexpr int kParts = 8;
  constexpr int kKeys = 20000;
  std::vector<int> histogram(kParts, 0);
  for (int i = 0; i < kKeys; ++i) {
    ++histogram[hp.Partition("user" + std::to_string(i), kParts)];
  }
  for (int c : histogram) {
    EXPECT_GT(c, kKeys / kParts / 2);
    EXPECT_LT(c, kKeys / kParts * 2);
  }
}

TEST(PartitionerTest, RangePartitionerIsMonotone) {
  RangePartitioner rp({"f", "m", "t"});
  EXPECT_EQ(rp.Partition("apple", 4), 0);
  EXPECT_EQ(rp.Partition("f", 4), 1);  // splits are lower-inclusive
  EXPECT_EQ(rp.Partition("grape", 4), 1);
  EXPECT_EQ(rp.Partition("pear", 4), 2);
  EXPECT_EQ(rp.Partition("zebra", 4), 3);
}

TEST(PartitionerTest, RangeFromSampleYieldsGlobalOrder) {
  Rng rng(17);
  std::vector<std::string> keys;
  for (int i = 0; i < 5000; ++i) {
    keys.push_back(std::to_string(rng.Uniform(1000000)));
  }
  const int parts = 8;
  auto rp = RangePartitioner::FromSample(keys, parts);
  // Every key in partition p must be <= every key in partition p+1.
  std::vector<std::string> max_of(parts), min_of(parts);
  std::vector<bool> seen(parts, false);
  for (const auto& k : keys) {
    const int p = rp.Partition(k, parts);
    if (!seen[p]) {
      max_of[p] = min_of[p] = k;
      seen[p] = true;
    } else {
      max_of[p] = std::max(max_of[p], k);
      min_of[p] = std::min(min_of[p], k);
    }
  }
  for (int p = 0; p + 1 < parts; ++p) {
    if (seen[p] && seen[p + 1]) {
      EXPECT_LE(max_of[p], min_of[p + 1]) << "partition " << p;
    }
  }
}

// ---- Spillable buffer ----

TEST(KvBufferTest, GroupsAndSortsInMemory) {
  SpillableKVBuffer buffer;
  ASSERT_TRUE(buffer.Add("b", "2").ok());
  ASSERT_TRUE(buffer.Add("a", "1").ok());
  ASSERT_TRUE(buffer.Add("b", "1").ok());
  auto groups = buffer.Finish();
  ASSERT_TRUE(groups.ok());
  std::string key;
  std::vector<std::string> values;
  ASSERT_TRUE((*groups)->NextGroup(&key, &values));
  EXPECT_EQ(key, "a");
  EXPECT_EQ(values.size(), 1u);
  ASSERT_TRUE((*groups)->NextGroup(&key, &values));
  EXPECT_EQ(key, "b");
  EXPECT_EQ(values.size(), 2u);
  EXPECT_FALSE((*groups)->NextGroup(&key, &values));
}

TEST(KvBufferTest, SpillsUnderMemoryPressureAndMergesCorrectly) {
  KVBufferOptions options;
  options.memory_budget_bytes = 4096;  // force many spills
  SpillableKVBuffer buffer(options);
  Rng rng(5);
  std::map<std::string, int> expected;
  for (int i = 0; i < 3000; ++i) {
    const std::string key =
        NumberedKey("k", static_cast<int64_t>(rng.Uniform(200)));
    ASSERT_TRUE(buffer.Add(key, "v").ok());
    ++expected[key];
  }
  EXPECT_GT(buffer.spill_count(), 0) << "test must exercise spilling";
  auto groups = buffer.Finish();
  ASSERT_TRUE(groups.ok());
  std::string key;
  std::vector<std::string> values;
  std::string prev;
  int total = 0;
  while ((*groups)->NextGroup(&key, &values)) {
    EXPECT_GT(key, prev) << "keys must be strictly increasing";
    prev = key;
    EXPECT_EQ(static_cast<int>(values.size()), expected[key]);
    total += static_cast<int>(values.size());
  }
  EXPECT_EQ(total, 3000);
}

TEST(KvBufferTest, FifoModePreservesArrivalOrder) {
  KVBufferOptions options;
  options.sort_by_key = false;
  SpillableKVBuffer buffer(options);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(buffer.Add(NumberedKey("k", 9 - i), std::to_string(i))
                    .ok());
  }
  auto groups = buffer.Finish();
  ASSERT_TRUE(groups.ok());
  std::string key;
  std::vector<std::string> values;
  int i = 0;
  while ((*groups)->NextGroup(&key, &values)) {
    EXPECT_EQ(values[0], std::to_string(i));
    ++i;
  }
  EXPECT_EQ(i, 10);
}

TEST(KvBufferTest, AddAfterFinishFails) {
  SpillableKVBuffer buffer;
  ASSERT_TRUE(buffer.Add("a", "1").ok());
  ASSERT_TRUE(buffer.Finish().ok());
  EXPECT_FALSE(buffer.Add("b", "2").ok());
}

TEST(KvBufferTest, UnsortedModeNeverSpillsEvenUnderPressure) {
  KVBufferOptions options;
  options.sort_by_key = false;
  options.memory_budget_bytes = 16;  // would spill every Add if sorted
  SpillableKVBuffer buffer(options);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        buffer.Add(NumberedKey("k", 499 - i), std::to_string(i)).ok());
  }
  EXPECT_EQ(buffer.spill_count(), 0);
  EXPECT_EQ(buffer.spilled_bytes(), 0);
  auto groups = buffer.Finish();
  ASSERT_TRUE(groups.ok());
  std::string key;
  std::vector<std::string> values;
  int i = 0;
  while ((*groups)->NextGroup(&key, &values)) {
    EXPECT_EQ(key, NumberedKey("k", 499 - i)) << "arrival order";
    EXPECT_EQ(values, std::vector<std::string>{std::to_string(i)});
    ++i;
  }
  EXPECT_EQ(i, 500);
}

TEST(KvBufferTest, AddBatchOnCorruptBatchKeepsPrefixAndReportsError) {
  ByteBuffer wire;
  EncodeKV(&wire, "good", "record");
  std::string batch(wire.view());
  batch += '\xff';  // dangling varint continuation: truncated length

  SpillableKVBuffer buffer;
  const Status st = buffer.AddBatch(batch);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(buffer.records_added(), 1) << "records before the corruption "
                                          "must be retained";
  auto groups = buffer.Finish();
  ASSERT_TRUE(groups.ok());
  std::string key;
  std::vector<std::string> values;
  ASSERT_TRUE((*groups)->NextGroup(&key, &values));
  EXPECT_EQ(key, "good");
  EXPECT_FALSE((*groups)->NextGroup(&key, &values));
}

TEST(KvBufferTest, AddBatchOnTruncatedValueReportsError) {
  ByteBuffer wire;
  EncodeKV(&wire, "key", "a-value-that-gets-cut");
  const std::string_view full = wire.view();
  SpillableKVBuffer buffer;
  EXPECT_FALSE(buffer.AddBatch(full.substr(0, full.size() - 5)).ok());
  EXPECT_EQ(buffer.records_added(), 0);
}

TEST(KvBufferTest, ZeroByteKeysAndValuesSurviveSpillRoundTrip) {
  KVBufferOptions options;
  options.memory_budget_bytes = 1;  // spill after every record
  SpillableKVBuffer buffer(options);
  ASSERT_TRUE(buffer.Add("", "1").ok());
  ASSERT_TRUE(buffer.Add("k", "").ok());
  ASSERT_TRUE(buffer.Add("", "2").ok());
  ASSERT_TRUE(buffer.Add("", "").ok());
  EXPECT_GT(buffer.spill_count(), 0);
  auto groups = buffer.Finish();
  ASSERT_TRUE(groups.ok());
  std::string key;
  std::vector<std::string> values;
  ASSERT_TRUE((*groups)->NextGroup(&key, &values));
  EXPECT_EQ(key, "");
  EXPECT_EQ(values, (std::vector<std::string>{"", "1", "2"}));
  ASSERT_TRUE((*groups)->NextGroup(&key, &values));
  EXPECT_EQ(key, "k");
  EXPECT_EQ(values, (std::vector<std::string>{""}));
  EXPECT_FALSE((*groups)->NextGroup(&key, &values));
  EXPECT_TRUE((*groups)->status().ok());
}

// ---- The job engine ----

TEST(DataMPIJobTest, WordCountEndToEnd) {
  JobConfig config;
  config.num_o_ranks = 3;
  config.num_a_ranks = 2;
  DataMPIJob job(config);
  const std::vector<std::string> docs = {"a b a", "b c", "a"};
  auto result = job.Run(
      [&](OContext* ctx) -> Status {
        for (const char* word :
             {docs[ctx->task_id()].c_str()}) {
          std::string_view line(word);
          size_t pos = 0;
          while (pos < line.size()) {
            size_t space = line.find(' ', pos);
            if (space == std::string_view::npos) space = line.size();
            DMB_RETURN_NOT_OK(ctx->Emit(line.substr(pos, space - pos), "1"));
            pos = space + 1;
          }
        }
        return Status::OK();
      },
      [](std::string_view key, const std::vector<std::string>& values,
         AEmitter* out) -> Status {
        out->Emit(key, std::to_string(values.size()));
        return Status::OK();
      });
  ASSERT_TRUE(result.ok()) << result.status();
  std::map<std::string, std::string> counts;
  for (const auto& kv : result->Merged()) counts[kv.key] = kv.value;
  EXPECT_EQ(counts["a"], "3");
  EXPECT_EQ(counts["b"], "2");
  EXPECT_EQ(counts["c"], "1");
  EXPECT_EQ(result->stats.o_records_emitted, 6);
  EXPECT_EQ(result->stats.output_records, 3);
}

TEST(DataMPIJobTest, DynamicTaskSchedulingCoversAllTasks) {
  JobConfig config;
  config.num_o_ranks = 2;
  config.num_a_ranks = 1;
  config.num_o_tasks = 9;  // more logical tasks than ranks -> waves
  DataMPIJob job(config);
  auto result = job.Run(
      [](OContext* ctx) -> Status {
        return ctx->Emit("task" + std::to_string(ctx->task_id()), "x");
      },
      [](std::string_view key, const std::vector<std::string>& values,
         AEmitter* out) -> Status {
        out->Emit(key, std::to_string(values.size()));
        return Status::OK();
      });
  ASSERT_TRUE(result.ok()) << result.status();
  std::set<std::string> keys;
  for (const auto& kv : result->Merged()) keys.insert(kv.key);
  EXPECT_EQ(keys.size(), 9u) << "every logical task must run exactly once";
}

TEST(DataMPIJobTest, CombinerReducesShuffleVolume) {
  auto run = [](bool use_combiner) {
    JobConfig config;
    config.num_o_ranks = 2;
    config.num_a_ranks = 2;
    if (use_combiner) {
      config.combiner = [](std::string_view,
                           const std::vector<std::string>& values) {
        int64_t total = 0;
        for (const auto& v : values) total += std::stoll(v);
        return std::to_string(total);
      };
    }
    DataMPIJob job(config);
    auto result = job.Run(
        [](OContext* ctx) -> Status {
          for (int i = 0; i < 1000; ++i) {
            DMB_RETURN_NOT_OK(ctx->Emit("same-key", "1"));
          }
          return Status::OK();
        },
        [](std::string_view key, const std::vector<std::string>& values,
           AEmitter* out) -> Status {
          int64_t total = 0;
          for (const auto& v : values) total += std::stoll(v);
          out->Emit(key, std::to_string(total));
          return Status::OK();
        });
    return result;
  };
  auto with = run(true);
  auto without = run(false);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with->Merged()[0].value, "2000");
  EXPECT_EQ(without->Merged()[0].value, "2000");
  EXPECT_LT(with->stats.shuffle_bytes, without->stats.shuffle_bytes / 10)
      << "combiner must collapse duplicate keys before the wire";
}

TEST(DataMPIJobTest, RangePartitionedSortIsGloballyOrdered) {
  Rng rng(23);
  std::vector<std::string> keys;
  for (int i = 0; i < 2000; ++i) {
    keys.push_back(
        NumberedKey("k", static_cast<int64_t>(rng.Uniform(100000))));
  }
  JobConfig config;
  config.num_o_ranks = 4;
  config.num_a_ranks = 4;
  config.partitioner = std::make_shared<RangePartitioner>(
      RangePartitioner::FromSample(keys, 4));
  DataMPIJob job(config);
  auto result = job.Run(
      [&](OContext* ctx) -> Status {
        const size_t begin = keys.size() * ctx->task_id() / 4;
        const size_t end = keys.size() * (ctx->task_id() + 1) / 4;
        for (size_t i = begin; i < end; ++i) {
          DMB_RETURN_NOT_OK(ctx->Emit(keys[i], ""));
        }
        return Status::OK();
      },
      [](std::string_view key, const std::vector<std::string>& values,
         AEmitter* out) -> Status {
        for (size_t i = 0; i < values.size(); ++i) out->Emit(key, "");
        return Status::OK();
      });
  ASSERT_TRUE(result.ok()) << result.status();
  const auto merged = result->Merged();
  ASSERT_EQ(merged.size(), keys.size());
  for (size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].key, merged[i].key) << "at " << i;
  }
}

TEST(DataMPIJobTest, CheckpointRestartReproducesAOutput) {
  TempDir dir("dmb-ckpt");
  JobConfig config;
  config.num_o_ranks = 2;
  config.num_a_ranks = 3;
  config.checkpoint_dir = dir.path().string();
  DataMPIJob job(config);
  auto a_fn = [](std::string_view key, const std::vector<std::string>& values,
                 AEmitter* out) -> Status {
    out->Emit(key, std::to_string(values.size()));
    return Status::OK();
  };
  auto first = job.Run(
      [](OContext* ctx) -> Status {
        for (int i = 0; i < 50; ++i) {
          DMB_RETURN_NOT_OK(ctx->Emit(NumberedKey("k", i % 7), "v"));
        }
        return Status::OK();
      },
      a_fn);
  ASSERT_TRUE(first.ok()) << first.status();

  // Restart the A phase only, from the persisted shuffle data.
  auto second = job.RunFromCheckpoint(a_fn);
  ASSERT_TRUE(second.ok()) << second.status();
  auto sort_pairs = [](std::vector<KVPair> v) {
    std::sort(v.begin(), v.end(), KVPairLess{});
    return v;
  };
  EXPECT_EQ(sort_pairs(first->Merged()), sort_pairs(second->Merged()));
}

TEST(DataMPIJobTest, CorruptCheckpointFailsRestartWithChecksumError) {
  TempDir dir("dmb-ckpt-corrupt");
  JobConfig config;
  config.num_o_ranks = 2;
  config.num_a_ranks = 2;
  config.checkpoint_dir = dir.path().string();
  DataMPIJob job(config);
  auto a_fn = [](std::string_view key, const std::vector<std::string>& values,
                 AEmitter* out) -> Status {
    out->Emit(key, std::to_string(values.size()));
    return Status::OK();
  };
  auto first = job.Run(
      [](OContext* ctx) -> Status {
        for (int i = 0; i < 200; ++i) {
          DMB_RETURN_NOT_OK(
              ctx->Emit(NumberedKey("key-", i % 13), "payload"));
        }
        return Status::OK();
      },
      a_fn);
  ASSERT_TRUE(first.ok()) << first.status();

  // Flip one byte in the middle of one A task's checkpoint file. The
  // checkpoints are io block files, so the restart must detect the
  // damage (block CRC / footer validation) instead of replaying it.
  const std::string path = dir.File("a-0.ckpt");
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  ASSERT_GT(bytes->size(), 0u);
  (*bytes)[bytes->size() / 2] ^= 0x40;
  ASSERT_TRUE(WriteFileBytes(path, *bytes).ok());

  auto restarted = job.RunFromCheckpoint(a_fn);
  ASSERT_FALSE(restarted.ok()) << "corrupt checkpoint must not restart";
  EXPECT_TRUE(restarted.status().code() == StatusCode::kCorruption ||
              restarted.status().IsIOError())
      << restarted.status();
}

TEST(DataMPIJobTest, SpillingJobStillProducesCorrectOutput) {
  JobConfig config;
  config.num_o_ranks = 2;
  config.num_a_ranks = 2;
  config.a_memory_budget_bytes = 2048;  // tiny -> spills
  DataMPIJob job(config);
  auto result = job.Run(
      [](OContext* ctx) -> Status {
        for (int i = 0; i < 2000; ++i) {
          DMB_RETURN_NOT_OK(ctx->Emit(
              NumberedKey("key-", (ctx->task_id() * 2000 + i) % 97),
              "1"));
        }
        return Status::OK();
      },
      [](std::string_view key, const std::vector<std::string>& values,
         AEmitter* out) -> Status {
        out->Emit(key, std::to_string(values.size()));
        return Status::OK();
      });
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->stats.a_spill_count, 0);
  int64_t total = 0;
  for (const auto& kv : result->Merged()) total += std::stoll(kv.value);
  EXPECT_EQ(total, 4000);
}

TEST(DataMPIJobTest, OTaskErrorPropagates) {
  JobConfig config;
  config.num_o_ranks = 2;
  config.num_a_ranks = 2;
  DataMPIJob job(config);
  auto result = job.Run(
      [](OContext* ctx) -> Status {
        if (ctx->task_id() == 1) return Status::Internal("boom");
        return ctx->Emit("k", "v");
      },
      [](std::string_view key, const std::vector<std::string>& values,
         AEmitter* out) -> Status {
        out->Emit(key, std::to_string(values.size()));
        return Status::OK();
      });
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace dmb::datampi
