#include "dfs/namenode.h"

#include <algorithm>
#include <cassert>

namespace dmb::dfs {

Namenode::Namenode(DfsConfig config, uint64_t seed)
    : config_(config), rng_(seed) {
  assert(config_.num_nodes >= 1);
  assert(config_.replication >= 1);
  assert(config_.block_size_bytes > 0);
}

Result<const FileInfo*> Namenode::CreateFile(const std::string& path,
                                             int64_t size_bytes,
                                             int client_node) {
  if (files_.count(path)) {
    return Status::AlreadyExists("file exists: " + path);
  }
  if (client_node < 0 || client_node >= config_.num_nodes) {
    return Status::InvalidArgument("client node out of range");
  }
  if (size_bytes < 0) {
    return Status::InvalidArgument("negative file size");
  }
  FileInfo file;
  file.path = path;
  file.size_bytes = size_bytes;
  int64_t remaining = size_bytes;
  const int replication = std::min(config_.replication, config_.num_nodes);
  while (remaining > 0 || file.blocks.empty()) {
    BlockInfo block;
    block.id = next_block_id_++;
    block.size_bytes = std::min<int64_t>(remaining, config_.block_size_bytes);
    if (size_bytes == 0) block.size_bytes = 0;
    PlaceReplicas(client_node, &block);
    physical_bytes_ += block.size_bytes * replication;
    remaining -= block.size_bytes;
    file.blocks.push_back(std::move(block));
    if (size_bytes == 0) break;
  }
  total_bytes_ += size_bytes;
  auto [it, inserted] = files_.emplace(path, std::move(file));
  (void)inserted;
  return &it->second;
}

void Namenode::PlaceReplicas(int client_node, BlockInfo* block) {
  const int replication = std::min(config_.replication, config_.num_nodes);
  if (usage_.size() != static_cast<size_t>(config_.num_nodes)) {
    usage_.assign(static_cast<size_t>(config_.num_nodes), 0);
  }
  block->replicas.clear();
  block->replicas.push_back(client_node);
  usage_[static_cast<size_t>(client_node)] += block->size_bytes;
  while (static_cast<int>(block->replicas.size()) < replication) {
    // Load-aware placement (HDFS considers datanode load): pick the
    // less-used of two random distinct candidates.
    int candidate = -1;
    for (int attempt = 0; attempt < 2; ++attempt) {
      int c;
      do {
        c = static_cast<int>(
            rng_.Uniform(static_cast<uint64_t>(config_.num_nodes)));
      } while (std::find(block->replicas.begin(), block->replicas.end(),
                         c) != block->replicas.end());
      if (candidate < 0 || usage_[static_cast<size_t>(c)] <
                               usage_[static_cast<size_t>(candidate)]) {
        candidate = c;
      }
    }
    block->replicas.push_back(candidate);
    usage_[static_cast<size_t>(candidate)] += block->size_bytes;
  }
}

Result<const FileInfo*> Namenode::GetFile(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  return &it->second;
}

Status Namenode::DeleteFile(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  const int replication = std::min(config_.replication, config_.num_nodes);
  for (const auto& b : it->second.blocks) {
    physical_bytes_ -= b.size_bytes * replication;
  }
  total_bytes_ -= it->second.size_bytes;
  files_.erase(it);
  return Status::OK();
}

std::vector<const FileInfo*> Namenode::ListFiles(
    const std::string& prefix) const {
  std::vector<const FileInfo*> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(&it->second);
  }
  return out;
}

int Namenode::ChooseReplicaForRead(const BlockInfo& block, int client_node,
                                   Rng* rng) const {
  if (IsLocal(block, client_node)) return client_node;
  assert(!block.replicas.empty());
  return block.replicas[rng->Uniform(block.replicas.size())];
}

bool Namenode::IsLocal(const BlockInfo& block, int client_node) {
  return std::find(block.replicas.begin(), block.replicas.end(),
                   client_node) != block.replicas.end();
}

double Namenode::LocalityFraction(const FileInfo& file, int node) const {
  if (file.size_bytes == 0) return 1.0;
  int64_t local = 0;
  for (const auto& b : file.blocks) {
    if (IsLocal(b, node)) local += b.size_bytes;
  }
  return static_cast<double>(local) / static_cast<double>(file.size_bytes);
}

std::vector<int64_t> Namenode::PerNodeUsage() const {
  std::vector<int64_t> usage(static_cast<size_t>(config_.num_nodes), 0);
  for (const auto& [path, file] : files_) {
    for (const auto& b : file.blocks) {
      for (int r : b.replicas) usage[static_cast<size_t>(r)] += b.size_bytes;
    }
  }
  return usage;
}

}  // namespace dmb::dfs
