// CRC-32 (IEEE 802.3 polynomial) for spill-file block integrity.
//
// Every block a run file stores carries a checksum of its on-disk
// payload, and the footer carries one of the block index, so a torn
// write, truncated file, or flipped bit surfaces as Status::Corruption
// instead of silently wrong merge output.

#ifndef DATAMPI_BENCH_IO_CRC32_H_
#define DATAMPI_BENCH_IO_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dmb::io {

/// \brief CRC-32 of a byte range. Pass a previous result as `seed` to
/// checksum data in chunks (Crc32(b, Crc32(a)) == Crc32(a+b)).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace dmb::io

#endif  // DATAMPI_BENCH_IO_CRC32_H_
