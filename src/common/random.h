// Deterministic pseudo-random number generation and the distributions used
// by the BigDataBench-style data generators (uniform, Zipf, Gaussian).

#ifndef DATAMPI_BENCH_COMMON_RANDOM_H_
#define DATAMPI_BENCH_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dmb {

/// \brief xoshiro256** PRNG: fast, high-quality, deterministic across
/// platforms (unlike std::mt19937 distributions, whose output is
/// implementation-defined for std::uniform_int_distribution).
class Rng {
 public:
  /// Seeds via splitmix64 so that nearby seeds give unrelated streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// \brief Next raw 64 random bits.
  uint64_t Next64();

  /// \brief Uniform in [0, n). n must be > 0. Unbiased (rejection sampling).
  uint64_t Uniform(uint64_t n);

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Standard normal via Box-Muller.
  double NextGaussian();

  /// \brief True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// \brief Creates an independent child stream (for per-partition
  /// generators that must be reproducible regardless of execution order).
  Rng Split();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// \brief Zipf-distributed sampler over {0, 1, ..., n-1} with exponent s.
///
/// Word frequencies in natural-language corpora (the wikipedia / amazon
/// seed models of BigDataBench) follow Zipf's law; this is the engine of
/// the text generator. Uses the rejection-inversion method of
/// Hormann & Derflinger, O(1) per sample after O(1) setup.
class ZipfSampler {
 public:
  /// \param n number of items (>= 1)
  /// \param s exponent (> 0); s ~ 1.0 for natural text.
  ZipfSampler(uint64_t n, double s);

  /// \brief Samples an item index in [0, n). Items with smaller index are
  /// more frequent.
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

  /// \brief Expected probability of item k (0-based), i.e. 1/(k+1)^s / H.
  double Pmf(uint64_t k) const;

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double h_integral_half_;  // H(1.5) - 1
};

/// \brief Fisher-Yates shuffle of a vector using Rng (deterministic).
template <typename T>
void Shuffle(std::vector<T>* v, Rng* rng) {
  if (v->empty()) return;
  for (size_t i = v->size() - 1; i > 0; --i) {
    const size_t j = static_cast<size_t>(rng->Uniform(i + 1));
    std::swap((*v)[i], (*v)[j]);
  }
}

}  // namespace dmb

#endif  // DATAMPI_BENCH_COMMON_RANDOM_H_
