// Shuffle micro-benchmark: arena-backed KVSlice records vs the seed
// string-pair representation on a WordCount-shaped shuffle.
//
// Both paths do the same work — collect N (word, "1") records, sort
// them by (key, value), and walk the sorted stream grouping equal keys —
// which is exactly the map-side stage-boundary hot path every engine
// runs. The seed path allocates two std::strings per record and sorts
// 64-byte string pairs; the slice path appends bytes to one KVArena and
// sorts 24-byte slices. A third column runs the full shared
// PartitionedCollector (partition-on-insert + merge) end to end.
//
// Usage: shuffle_bench [records] [--json <path>]

#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/kv.h"
#include "shuffle/collector.h"
#include "shuffle/kv_arena.h"
#include "shuffle/run_merger.h"

namespace dmb::bench {
namespace {

/// Zipf-flavoured word ids: heavy duplication (WordCount traffic), long
/// tail of rare words.
std::vector<std::string> MakeWords(int64_t n) {
  Rng rng(20140707);  // the paper's year, for reproducibility
  std::vector<std::string> words;
  words.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const double u =
        static_cast<double>(rng.Uniform(1 << 20)) / (1 << 20);
    const auto id = static_cast<int64_t>(u * u * u * 50000);
    words.push_back("word" + std::to_string(id));
  }
  return words;
}

struct PathResult {
  double seconds = 0;
  int64_t groups = 0;
  int64_t records = 0;
};

/// The seed representation: one KVPair (two heap strings) per record,
/// sorted as string pairs.
PathResult StringPairPath(const std::vector<std::string>& words) {
  Stopwatch sw;
  std::vector<datampi::KVPair> pairs;
  pairs.reserve(words.size());
  for (const auto& w : words) {
    pairs.push_back(datampi::KVPair{w, "1"});
  }
  std::sort(pairs.begin(), pairs.end(), datampi::KVPairLess{});
  PathResult r;
  size_t i = 0;
  while (i < pairs.size()) {
    const std::string& key = pairs[i].key;
    while (i < pairs.size() && pairs[i].key == key) {
      ++r.records;
      ++i;
    }
    ++r.groups;
  }
  r.seconds = sw.ElapsedSeconds();
  return r;
}

/// The arena representation: bytes appended to one flat buffer, 24-byte
/// slices sorted over it.
PathResult ArenaSlicePath(const std::vector<std::string>& words) {
  Stopwatch sw;
  shuffle::KVArena arena;
  std::vector<shuffle::KVSlice> slices;
  slices.reserve(words.size());
  for (const auto& w : words) {
    slices.push_back(arena.Add(w, "1"));
  }
  arena.Sort(&slices);
  PathResult r;
  size_t i = 0;
  while (i < slices.size()) {
    const std::string_view key = arena.KeyOf(slices[i]);
    while (i < slices.size() && arena.KeyOf(slices[i]) == key) {
      ++r.records;
      ++i;
    }
    ++r.groups;
  }
  r.seconds = sw.ElapsedSeconds();
  return r;
}

/// The full shared shuffle path: partition-on-insert into 4 partitions,
/// merge-iterate every partition's groups (what the engines actually
/// run at the stage boundary).
PathResult CollectorPath(const std::vector<std::string>& words) {
  Stopwatch sw;
  shuffle::CollectorOptions options;
  options.num_partitions = 4;
  options.partitioner = std::make_shared<datampi::HashPartitioner>();
  options.on_budget = shuffle::BudgetAction::kUnbounded;
  shuffle::PartitionedCollector collector(std::move(options));
  PathResult r;
  for (const auto& w : words) {
    if (!collector.Add(w, "1").ok()) return r;
  }
  auto iterators = collector.FinishIterators();
  if (!iterators.ok()) return r;
  std::string key;
  std::vector<std::string> values;
  for (auto& it : *iterators) {
    while (it->NextGroup(&key, &values)) {
      r.records += static_cast<int64_t>(values.size());
      ++r.groups;
    }
  }
  r.seconds = sw.ElapsedSeconds();
  return r;
}

int Run(int argc, char** argv) {
  int64_t n = 1'000'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) break;  // flags handled by BenchJson
    try {
      n = std::stoll(arg);
    } catch (const std::exception&) {
      n = 0;
    }
    if (n <= 0) {
      std::cerr << "usage: shuffle_bench [records] [--json <path>]\n";
      return 2;
    }
  }
  BenchJson json = BenchJson::FromArgs(argc, argv);

  PrintBanner(std::cout, "Shuffle representation micro-benchmark");
  std::cout << "WordCount-shaped shuffle, " << n
            << " records (collect + sort + group), best of 3 runs.\n";
  const std::vector<std::string> words = MakeWords(n);

  PathResult string_pairs, slices, collector;
  for (int rep = 0; rep < 3; ++rep) {
    const PathResult sp = StringPairPath(words);
    const PathResult sl = ArenaSlicePath(words);
    const PathResult co = CollectorPath(words);
    if (rep == 0 || sp.seconds < string_pairs.seconds) string_pairs = sp;
    if (rep == 0 || sl.seconds < slices.seconds) slices = sl;
    if (rep == 0 || co.seconds < collector.seconds) collector = co;
  }

  // All paths must agree before any timing is trusted.
  if (slices.groups != string_pairs.groups ||
      collector.groups != string_pairs.groups ||
      slices.records != string_pairs.records ||
      collector.records != string_pairs.records) {
    std::cerr << "MISMATCH between paths: string-pairs "
              << string_pairs.groups << " groups, slices " << slices.groups
              << ", collector " << collector.groups << "\n";
    return 1;
  }

  TablePrinter table({"path", "seconds", "Mrec/s", "vs string pairs"});
  auto add_row = [&](const char* name, const PathResult& r) {
    table.AddRow({name, TablePrinter::Num(r.seconds, 3),
                  TablePrinter::Num(static_cast<double>(n) / 1e6 /
                                        r.seconds,
                                    1),
                  TablePrinter::Pct(
                      ImprovementOver(r.seconds, string_pairs.seconds))});
  };
  add_row("string pairs (seed)", string_pairs);
  add_row("arena slices", slices);
  add_row("partitioned collector", collector);
  table.Print(std::cout);
  std::cout << string_pairs.groups << " distinct keys, "
            << string_pairs.records << " records grouped on every path.\n";

  json.Add("shuffle_bench/string_pairs/" + std::to_string(n),
           string_pairs.seconds, "s");
  json.Add("shuffle_bench/arena_slices/" + std::to_string(n),
           slices.seconds, "s");
  json.Add("shuffle_bench/collector/" + std::to_string(n),
           collector.seconds, "s");
  if (!json.Write()) return 1;

  if (slices.seconds >= string_pairs.seconds) {
    std::cerr << "REGRESSION: slice path (" << slices.seconds
              << "s) not faster than string pairs ("
              << string_pairs.seconds << "s)\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dmb::bench

int main(int argc, char** argv) { return dmb::bench::Run(argc, argv); }
