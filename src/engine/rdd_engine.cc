#include "engine/rdd_engine.h"

#include <atomic>
#include <memory>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "rddlite/rdd.h"
#include "shuffle/collector.h"
#include "shuffle/run_merger.h"

namespace dmb::engine {

namespace {

using StrPair = std::pair<std::string, std::string>;

std::pair<size_t, size_t> SplitRange(size_t n, int part, int parts) {
  return {n * static_cast<size_t>(part) / static_cast<size_t>(parts),
          n * static_cast<size_t>(part + 1) / static_cast<size_t>(parts)};
}

/// Collects map emissions of one partition into the shared shuffle
/// collector (arena slices, not string pairs). Without a combiner the
/// arrival order is preserved; with one, the records are sorted,
/// grouped and combined at Take() — Spark's map-side combineByKey.
class CollectingMapContext final : public MapContext {
 public:
  CollectingMapContext(int task_id, CombinerFn combiner,
                       ParallelContext* parallel)
      : task_id_(task_id) {
    shuffle::CollectorOptions copts;
    copts.num_partitions = 1;
    copts.sort_by_key = combiner != nullptr;
    copts.combiner = std::move(combiner);
    copts.on_budget = shuffle::BudgetAction::kUnbounded;
    copts.parallel = parallel;
    collector_ =
        std::make_unique<shuffle::PartitionedCollector>(std::move(copts));
  }

  Status Emit(std::string_view key, std::string_view value) override {
    return collector_->Add(key, value);
  }
  int task_id() const override { return task_id_; }

  int64_t records() const { return collector_->records_added(); }
  int64_t parallel_tasks() const { return collector_->parallel_tasks(); }

  Result<std::vector<StrPair>> Take() {
    DMB_ASSIGN_OR_RETURN(auto iterators, collector_->FinishIterators());
    std::vector<StrPair> out;
    std::string key;
    std::vector<std::string> values;
    while (iterators[0]->NextGroup(&key, &values)) {
      for (auto& v : values) out.emplace_back(key, std::move(v));
    }
    DMB_RETURN_NOT_OK(iterators[0]->status());
    return out;
  }

 private:
  int task_id_;
  std::unique_ptr<shuffle::PartitionedCollector> collector_;
};

/// Narrow stage: applies the user map function (plus the map-side
/// combiner, as Spark's combineByKey does) to this partition's slice of
/// the input — or, with pre-assigned splits (narrow plan edges), to the
/// split pinned to this partition.
class MapStageRDD final : public rddlite::RDD<StrPair> {
 public:
  MapStageRDD(rddlite::RddContext* ctx,
              std::shared_ptr<const std::vector<KVPair>> input,
              std::shared_ptr<const std::vector<std::vector<KVPair>>> splits,
              std::shared_ptr<shuffle::BatchChannelGroup> stream,
              int parts, MapFn map_fn, CombinerFn combiner,
              ParallelContext* parallel, std::atomic<int64_t>* map_records,
              std::atomic<int64_t>* parallel_tasks)
      : RDD<StrPair>(ctx, parts),
        input_(std::move(input)),
        splits_(std::move(splits)),
        stream_(std::move(stream)),
        map_fn_(std::move(map_fn)),
        combiner_(std::move(combiner)),
        parallel_(parallel),
        map_records_(map_records),
        parallel_tasks_(parallel_tasks) {}

 protected:
  Result<std::vector<StrPair>> DoCompute(int p) override {
    CollectingMapContext ctx(p, combiner_, parallel_);
    if (stream_) {
      // Pipelined narrow edge: pull partition p's batches while the
      // upstream stage is still producing them.
      DMB_RETURN_NOT_OK(shuffle::DrainChannel(
          stream_.get(), p,
          [&](std::string_view key, std::string_view value) {
            return map_fn_(key, value, &ctx);
          }));
      return Finish(&ctx);
    }
    const std::vector<KVPair>& records =
        splits_ ? (*splits_)[static_cast<size_t>(p)] : *input_;
    const auto [begin, end] =
        splits_ ? std::pair<size_t, size_t>{0, records.size()}
                : SplitRange(records.size(), p, this->num_partitions());
    for (size_t i = begin; i < end; ++i) {
      DMB_RETURN_NOT_OK(
          map_fn_(records[i].key, records[i].value, &ctx));
    }
    return Finish(&ctx);
  }

 private:
  Result<std::vector<StrPair>> Finish(CollectingMapContext* ctx) {
    map_records_->fetch_add(ctx->records(), std::memory_order_relaxed);
    auto out = ctx->Take();
    parallel_tasks_->fetch_add(ctx->parallel_tasks(),
                               std::memory_order_relaxed);
    return out;
  }

  std::shared_ptr<const std::vector<KVPair>> input_;
  std::shared_ptr<const std::vector<std::vector<KVPair>>> splits_;
  std::shared_ptr<shuffle::BatchChannelGroup> stream_;
  MapFn map_fn_;
  CombinerFn combiner_;
  ParallelContext* parallel_;
  std::atomic<int64_t>* map_records_;
  std::atomic<int64_t>* parallel_tasks_;
};

/// Spill-mode counters surfaced into EngineStats.
struct ShuffleSpillStats {
  std::atomic<int64_t> spill_count{0};
  std::atomic<int64_t> spill_bytes_raw{0};
  std::atomic<int64_t> spill_bytes_on_disk{0};
  std::atomic<int64_t> blocks_read{0};
  std::atomic<int64_t> parallel_tasks{0};
};

/// Wide stage: materializes the parent once into the shared shuffle
/// collector, which partitions on insert and sorts per partition. Two
/// modes:
///   * Spark 0.8 (default): the resident bytes are reserved from the
///     executor MemoryManager — shuffle data is memory-resident, so
///     exceeding the budget fails the job with OutOfMemory.
///   * Spark 0.9+ (spill_past_budget): the collector owns the budget
///     and spills sorted, checksummed run files past it; partitions are
///     then drained lazily through the streaming k-way merge, so the
///     resident footprint stays bounded by runs x block size.
class ShuffleStageRDD final : public rddlite::RDD<StrPair> {
 public:
  struct Options {
    std::shared_ptr<const datampi::Partitioner> partitioner;
    bool sort_by_key = true;
    bool spill_past_budget = false;
    int64_t memory_budget_bytes = 64 << 20;
    io::BlockFileOptions spill_io;
    /// Borrowed intra-task parallelism context (may be null).
    ParallelContext* parallel = nullptr;
  };

  ShuffleStageRDD(rddlite::RDD<StrPair>::Ptr parent, int parts,
                  Options options, std::atomic<int64_t>* shuffle_bytes,
                  ShuffleSpillStats* spill_stats)
      : RDD<StrPair>(parent->context(), parts),
        parent_(std::move(parent)),
        options_(std::move(options)),
        shuffle_bytes_(shuffle_bytes),
        spill_stats_(spill_stats) {}

  ~ShuffleStageRDD() override {
    MutexLock lock(mu_);
    if (store_bytes_ > 0) this->ctx_->memory()->Release(store_bytes_);
  }

 protected:
  Result<std::vector<StrPair>> DoCompute(int p) override {
    std::unique_ptr<shuffle::KVGroupIterator> iterator;
    {
      MutexLock lock(mu_);
      DMB_RETURN_NOT_OK(EnsureMaterializedLocked());
      // The partition copy happens under mu_: materialization and every
      // consumer read are ordered by the lock, not by a racy flag.
      if (!options_.spill_past_budget) {
        return store_[static_cast<size_t>(p)];
      }
      // Spill mode: each partition is drained from its merge iterator
      // exactly once, so only the consumer ever holds the decoded
      // records.
      iterator = std::move(iterators_[static_cast<size_t>(p)]);
    }
    if (!iterator) {
      return Status::Internal("rdd shuffle partition drained twice");
    }
    std::vector<StrPair> out;
    std::string key;
    std::vector<std::string> values;
    while (iterator->NextGroup(&key, &values)) {
      for (auto& v : values) out.emplace_back(key, std::move(v));
    }
    DMB_RETURN_NOT_OK(iterator->status());
    spill_stats_->blocks_read.fetch_add(iterator->blocks_read(),
                                        std::memory_order_relaxed);
    return out;
  }

 private:
  Status EnsureMaterializedLocked() DMB_REQUIRES(mu_) {
    if (materialized_) return store_status_;
    materialized_ = true;
    store_status_ = Materialize();
    return store_status_;
  }

  Status Materialize() DMB_REQUIRES(mu_) {
    shuffle::CollectorOptions copts;
    copts.num_partitions = this->num_partitions();
    copts.partitioner = options_.partitioner;
    copts.sort_by_key = options_.sort_by_key;
    copts.parallel = options_.parallel;
    if (options_.spill_past_budget) {
      // Spark 0.9+ mode: the collector enforces the budget itself and
      // spills run files (io block format) under pressure.
      copts.on_budget = shuffle::BudgetAction::kSpill;
      copts.memory_budget_bytes = options_.memory_budget_bytes;
      copts.spill_io = options_.spill_io;
      copts.file_prefix = "rdd-shuffle-";
    } else {
      // Spark 0.8: the executor MemoryManager owns the budget decision
      // (it is shared with cached RDDs), so the collector itself never
      // spills or fails.
      copts.on_budget = shuffle::BudgetAction::kUnbounded;
    }
    collector_ =
        std::make_unique<shuffle::PartitionedCollector>(std::move(copts));
    for (int pp = 0; pp < parent_->num_partitions(); ++pp) {
      DMB_ASSIGN_OR_RETURN(std::vector<StrPair> in,
                           parent_->ComputePartition(pp));
      if (!options_.spill_past_budget) {
        // Reserve before inserting, so an over-budget job fails without
        // first making the whole partition resident.
        int64_t delta = 0;
        for (const auto& kv : in) {
          delta += static_cast<int64_t>(kv.first.size() + kv.second.size()) +
                   shuffle::PartitionedCollector::kRecordOverheadBytes;
        }
        DMB_RETURN_NOT_OK(this->ctx_->memory()->Reserve(delta));
        store_bytes_ += delta;
      }
      DMB_RETURN_NOT_OK(collector_->AddBatch(in));
    }
    shuffle_bytes_->fetch_add(collector_->encoded_input_bytes(),
                              std::memory_order_relaxed);
    DMB_ASSIGN_OR_RETURN(auto iterators, collector_->FinishIterators());
    spill_stats_->spill_count.fetch_add(collector_->spill_count(),
                                        std::memory_order_relaxed);
    spill_stats_->spill_bytes_raw.fetch_add(collector_->spilled_raw_bytes(),
                                            std::memory_order_relaxed);
    spill_stats_->spill_bytes_on_disk.fetch_add(collector_->spilled_bytes(),
                                                std::memory_order_relaxed);
    spill_stats_->parallel_tasks.fetch_add(collector_->parallel_tasks(),
                                           std::memory_order_relaxed);
    if (options_.spill_past_budget) {
      // Keep the iterators (and the collector owning their runs); each
      // partition streams out on first DoCompute.
      iterators_ = std::move(iterators);
      return Status::OK();
    }
    store_.resize(static_cast<size_t>(this->num_partitions()));
    std::string key;
    std::vector<std::string> values;
    for (size_t p = 0; p < iterators.size(); ++p) {
      while (iterators[p]->NextGroup(&key, &values)) {
        for (auto& v : values) store_[p].emplace_back(key, std::move(v));
      }
      DMB_RETURN_NOT_OK(iterators[p]->status());
    }
    return Status::OK();
  }

  rddlite::RDD<StrPair>::Ptr parent_;
  Options options_;
  std::atomic<int64_t>* shuffle_bytes_;
  ShuffleSpillStats* spill_stats_;
  mutable Mutex mu_;
  bool materialized_ DMB_GUARDED_BY(mu_) = false;
  Status store_status_ DMB_GUARDED_BY(mu_);
  /// Collector kept alive in spill mode: the merge iterators stream out
  /// of its arena and run files.
  std::unique_ptr<shuffle::PartitionedCollector> collector_
      DMB_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<shuffle::KVGroupIterator>> iterators_
      DMB_GUARDED_BY(mu_);
  std::vector<std::vector<StrPair>> store_ DMB_GUARDED_BY(mu_);
  int64_t store_bytes_ DMB_GUARDED_BY(mu_) = 0;
};

/// Reduce-side collector: the shared stream-aware tee behind a
/// ReduceEmitter face (retains the partition and/or streams into the
/// job's output channel; a push failure is sticky in status()).
class CollectingReduceEmitter final : public ReduceEmitter {
 public:
  CollectingReduceEmitter(shuffle::BatchStreamWriter* stream, bool retain)
      : tee_(stream, retain) {}

  void Emit(std::string_view key, std::string_view value) override {
    tee_.Collect(key, value);
  }
  std::vector<KVPair> Take() { return tee_.Take(); }
  int64_t records() const { return tee_.records(); }
  const Status& status() const { return tee_.status(); }

 private:
  shuffle::StreamTeeCollector tee_;
};

}  // namespace

Result<JobOutput> RddEngine::RunStage(const JobSpec& spec) {
  DMB_RETURN_NOT_OK(ValidateSpec(spec));
  if (spec.cancel && spec.cancel->cancelled()) return spec.cancel->status();
  // Cooperative cancellation: checked per map record / reduce group.
  const MapFn user_map = CancellableMap(spec.map_fn, spec.cancel);
  const ReduceFn user_reduce = CancellableReduce(spec.reduce_fn, spec.cancel);
  // Held for the stage's duration: a concurrent stage with different
  // knobs may swap the engine's cache, and the shared_ptr keeps this
  // stage's pool alive until its tasks finish.
  std::shared_ptr<ParallelContext> parallel = ShuffleParallel(spec);
  rddlite::RddContext::Options options;
  options.slots = spec.parallelism;
  if (spec.memory_budget_bytes > 0) {
    options.memory_budget_bytes = spec.memory_budget_bytes;
  }
  rddlite::RddContext ctx(options);

  ShuffleStageRDD::Options shuffle_options;
  shuffle_options.partitioner = spec.partitioner;
  if (!shuffle_options.partitioner) {
    shuffle_options.partitioner = std::make_shared<datampi::HashPartitioner>();
  }
  shuffle_options.sort_by_key = spec.sort_by_key;
  shuffle_options.spill_past_budget = spec.rdd_shuffle_spill;
  if (spec.memory_budget_bytes > 0) {
    shuffle_options.memory_budget_bytes = spec.memory_budget_bytes;
  }
  shuffle_options.spill_io = SpillIoOptions(spec);
  shuffle_options.parallel = parallel.get();

  std::atomic<int64_t> map_records{0};
  std::atomic<int64_t> shuffle_bytes{0};
  ShuffleSpillStats spill_stats;
  auto mapped = std::make_shared<MapStageRDD>(
      &ctx, spec.input, spec.input_splits, spec.stream_input,
      spec.parallelism, user_map, spec.combiner, parallel.get(),
      &map_records, &spill_stats.parallel_tasks);
  auto shuffled = std::make_shared<ShuffleStageRDD>(
      mapped, spec.parallelism, std::move(shuffle_options), &shuffle_bytes,
      &spill_stats);

  JobOutput output;
  output.partitions.resize(static_cast<size_t>(spec.parallelism));
  std::atomic<int64_t> reduce_in{0}, reduce_out{0};
  std::vector<Status> statuses(static_cast<size_t>(spec.parallelism));
  {
    ThreadPool pool(spec.parallelism);
    for (int p = 0; p < spec.parallelism; ++p) {
      pool.Submit([&, p] {
        auto part = shuffled->ComputePartition(p);
        if (!part.ok()) {
          // Unblock sibling tasks parked on the output stream's
          // backpressure window (and the downstream consumer).
          if (spec.stream_output) spec.stream_output->Cancel(part.status());
          statuses[static_cast<size_t>(p)] = part.status();
          return;
        }
        reduce_in.fetch_add(static_cast<int64_t>(part->size()),
                            std::memory_order_relaxed);
        std::unique_ptr<shuffle::BatchStreamWriter> out_stream;
        if (spec.stream_output) {
          out_stream = std::make_unique<shuffle::BatchStreamWriter>(
              spec.stream_output.get(), p);
        }
        CollectingReduceEmitter emitter(out_stream.get(),
                                        !spec.stream_output_only);
        Status st;
        std::vector<std::string> values;
        size_t i = 0;
        while (i < part->size() && st.ok()) {
          const std::string key = std::move((*part)[i].first);
          values.clear();
          if (spec.sort_by_key) {
            values.push_back(std::move((*part)[i].second));
            ++i;
            while (i < part->size() && (*part)[i].first == key) {
              values.push_back(std::move((*part)[i].second));
              ++i;
            }
          } else {
            // Arrival-order singleton groups, as DataMPI's unsorted mode.
            values.push_back(std::move((*part)[i].second));
            ++i;
          }
          st = user_reduce(key, values, &emitter);
          if (st.ok()) st = emitter.status();
        }
        if (st.ok() && out_stream != nullptr) st = out_stream->Finish();
        if (!st.ok()) {
          if (spec.stream_output) spec.stream_output->Cancel(st);
          statuses[static_cast<size_t>(p)] = st;
          return;
        }
        auto out = emitter.Take();
        reduce_out.fetch_add(emitter.records(), std::memory_order_relaxed);
        output.partitions[static_cast<size_t>(p)] = std::move(out);
      });
    }
    pool.Wait();
  }
  for (const auto& st : statuses) {
    DMB_RETURN_NOT_OK(st);
  }

  output.stats.map_output_records = map_records.load();
  output.stats.shuffle_bytes = shuffle_bytes.load();
  // Without rdd_shuffle_spill rddlite has no spill path (it OOMs), so
  // these stay 0; in Spark 0.9+ mode they report the wide stage's
  // pressure spills and the streaming merge's block reads.
  output.stats.spill_count = spill_stats.spill_count.load();
  output.stats.spill_bytes_raw = spill_stats.spill_bytes_raw.load();
  output.stats.spill_bytes_on_disk = spill_stats.spill_bytes_on_disk.load();
  output.stats.blocks_read = spill_stats.blocks_read.load();
  output.stats.reduce_input_records = reduce_in.load();
  output.stats.output_records = reduce_out.load();
  output.stats.parallel_shuffle_tasks = spill_stats.parallel_tasks.load();
  return output;
}

}  // namespace dmb::engine
