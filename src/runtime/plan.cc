#include "runtime/plan.h"

namespace dmb::runtime {

int Plan::AddStage(StageSpec spec, std::vector<StageInput> inputs) {
  const int id = static_cast<int>(stages_.size());
  if (spec.name.empty()) spec.name = "stage-" + std::to_string(id);
  stages_.push_back(Stage{std::move(spec), std::move(inputs)});
  return id;
}

int Plan::AddCachedInput(std::string key, CachedInputProvider provider,
                         int parallelism) {
  StageSpec spec;
  spec.name = "cached-input:" + key;
  spec.job.parallelism = parallelism;
  spec.cache_output = std::move(key);
  spec.input_provider = std::move(provider);
  return AddStage(std::move(spec));
}

Status Plan::Validate() const {
  if (stages_.empty()) {
    return Status::InvalidArgument("plan has no stages");
  }
  if (options_.pipeline_batch_records < 1) {
    return Status::InvalidArgument(
        "PlanOptions.pipeline_batch_records must be >= 1");
  }
  if (options_.pipeline_channel_batches < 1) {
    return Status::InvalidArgument(
        "PlanOptions.pipeline_channel_batches must be >= 1");
  }
  bool upstream_adapt = false;
  for (size_t i = 0; i < stages_.size(); ++i) {
    const Stage& stage = stages_[i];
    const std::string where = "stage '" + stage.spec.name + "'";
    if (stage.spec.input_provider) {
      // A cached-input stage is a pure root: no engine run, no edges,
      // no binder — just a (possibly cached) split of its provider's
      // records.
      if (stage.spec.cache_output.empty()) {
        return Status::InvalidArgument(
            where + ": a cached-input stage needs a cache_output key");
      }
      if (!stage.inputs.empty() || stage.spec.binder) {
        return Status::InvalidArgument(
            where + ": a cached-input stage must be a root without a "
                    "binder");
      }
      if (stage.spec.job.input || stage.spec.job.input_splits ||
          stage.spec.job.stream_input) {
        return Status::InvalidArgument(
            where + ": a cached-input stage cannot also carry a job "
                    "input");
      }
      if (stage.spec.job.parallelism < 1) {
        return Status::InvalidArgument(
            where + ": cached-input parallelism must be >= 1");
      }
    }
    int state_edges = 0;
    int narrow_edges = 0;
    int wide_edges = 0;
    for (const StageInput& in : stage.inputs) {
      if (in.stage < 0 || in.stage >= static_cast<int>(i)) {
        // AddStage appends, so a valid edge always points at an earlier
        // id — which is what keeps every plan acyclic by construction.
        return Status::InvalidArgument(
            where + ": input edge references stage " +
            std::to_string(in.stage) + " (must name an earlier stage)");
      }
      switch (in.kind) {
        case EdgeKind::kState:
          ++state_edges;
          break;
        case EdgeKind::kNarrow:
          ++narrow_edges;
          break;
        case EdgeKind::kWide:
          ++wide_edges;
          break;
      }
    }
    if (state_edges > 1) {
      return Status::InvalidArgument(where + ": more than one state edge");
    }
    if (state_edges == 1 && !stage.spec.binder) {
      return Status::InvalidArgument(
          where + ": a state edge requires a binder to consume it");
    }
    if (narrow_edges > 0 && wide_edges > 0) {
      return Status::InvalidArgument(
          where + ": narrow and wide data edges cannot be mixed");
    }
    const bool has_data_edges = narrow_edges + wide_edges > 0;
    if (has_data_edges &&
        (stage.spec.job.input || stage.spec.job.input_splits)) {
      return Status::InvalidArgument(
          where + ": a stage fed by data edges cannot also carry a root "
                  "input");
    }
    if (narrow_edges > 0 && !stage.spec.binder && !upstream_adapt) {
      // With a binder the parallelism may legitimately change at bind
      // time, and an upstream adapt hook may rewrite both ends of the
      // edge after the plan validates; the scheduler re-checks split
      // alignment at run time either way.
      for (const StageInput& in : stage.inputs) {
        if (in.kind != EdgeKind::kNarrow) continue;
        const Stage& parent = stages_[static_cast<size_t>(in.stage)];
        if (parent.spec.job.parallelism != stage.spec.job.parallelism) {
          return Status::InvalidArgument(
              where + ": narrow edge from '" + parent.spec.name +
              "' needs equal parallelism (" +
              std::to_string(parent.spec.job.parallelism) + " vs " +
              std::to_string(stage.spec.job.parallelism) + ")");
        }
      }
    }
    if (stage.spec.adapt) upstream_adapt = true;
  }
  return Status::OK();
}

std::vector<KVPair> PlanOutput::Merged() const {
  return engine::MergedPartitions(partitions);
}

}  // namespace dmb::runtime
