// Plan-level caching and adaptive re-planning benchmark.
//
// Two scenarios, both self-checking:
//
//   1. Cached vs uncached iterative k-means: 10 training iterations
//      driven one job at a time. Uncached, every iteration rebuilds and
//      re-encodes the input split; cached, the encoded-partial split is
//      registered in the engine's StageCache once and every later
//      iteration consumes it as a narrow parent. The models must be
//      exactly equal (same floating-point summation order), and on a
//      multi-core host the cached run must be >= 1.5x faster —
//      "REGRESSION:" + exit 1 otherwise.
//
//   2. Adaptive vs static sort: the three-stage total-order sort plan
//      (sample -> sort -> deliver) run with the static reducer count
//      and with the sample stage's adapt hook choosing the sort/deliver
//      width at run time from the observed sample size. Outputs must be
//      byte-identical; the chosen width is reported as a metric.
//
//   cache_bench [--engine name] [--iterations N] [--vectors N]
//               [--sort-records N] [--json path]

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "datagen/vectors.h"
#include "engine/registry.h"
#include "workloads/kmeans.h"
#include "workloads/sort_pipeline.h"

namespace {

using namespace dmb;

std::vector<datampi::KVPair> RandomSortInput(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<datampi::KVPair> records;
  records.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::string key;
    for (int c = 0; c < 16; ++c) {
      key.push_back(static_cast<char>('a' + rng.Uniform(26)));
    }
    records.push_back(datampi::KVPair{key, key});
  }
  return records;
}

}  // namespace

int main(int argc, char** argv) {
  std::string engine_name = "datampi";
  int iterations = 10;
  int64_t vector_count = 4000;
  int sort_records = 200000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      engine_name = argv[++i];
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      iterations = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--vectors") == 0 && i + 1 < argc) {
      vector_count = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--sort-records") == 0 && i + 1 < argc) {
      sort_records = std::atoi(argv[++i]);
    }
  }
  bench::BenchJson json = bench::BenchJson::FromArgs(argc, argv);

  auto engine_or = engine::MakeEngine(engine_name);
  if (!engine_or.ok()) {
    std::cerr << engine_or.status().ToString() << "\n";
    return 1;
  }

  // ---- 1. Cached vs uncached iterative k-means ----
  // One seed model keeps the dense dimension vocab-sized (instead of
  // 5 x 131072-strided) and long documents give high-nnz vectors, so
  // the per-vector map work the cache eliminates — rebuilding and
  // re-encoding each vector's partial every iteration — is the measured
  // quantity, not dense-centroid overhead identical in both modes.
  datagen::KmeansDataOptions data;
  data.num_models = 1;
  data.min_terms_per_doc = 300;
  data.max_terms_per_doc = 500;
  const auto vectors = datagen::GenerateKmeansVectors(vector_count, data);
  const uint32_t dim = datagen::KmeansDimension(data);
  std::cout << "cache_bench: k-means, " << vector_count << " vectors, "
            << iterations << " iterations, engine " << engine_name << "\n";

  workloads::EngineConfig config;
  config.parallelism = 1;
  // Threshold 0: run all `iterations` iterations in both modes (no
  // early convergence skewing the comparison).
  auto run_train = [&](bool cache) -> Result<std::pair<double, workloads::KmeansModel>> {
    auto eng = engine::MakeEngine(engine_name);
    if (!eng.ok()) return eng.status();
    workloads::EngineConfig c = config;
    c.cache = cache;
    Stopwatch sw;
    auto trained = workloads::KmeansTrain(**eng, vectors, 4, dim,
                                          /*threshold=*/0.0, iterations, c);
    if (!trained.ok()) return trained.status();
    return std::make_pair(sw.ElapsedSeconds(), std::move(trained->first));
  };

  auto uncached = run_train(false);
  if (!uncached.ok()) {
    std::cerr << "uncached k-means failed: " << uncached.status() << "\n";
    return 1;
  }
  auto cached = run_train(true);
  if (!cached.ok()) {
    std::cerr << "cached k-means failed: " << cached.status() << "\n";
    return 1;
  }
  if (cached->second.centroids != uncached->second.centroids ||
      cached->second.counts != uncached->second.counts) {
    std::cerr << "MODEL MISMATCH: cached training diverged from uncached\n";
    return 1;
  }
  const double speedup = uncached->first / cached->first;
  std::cout << "  uncached " << uncached->first << " s, cached "
            << cached->first << " s (" << speedup
            << "x, models exactly equal)\n";
  json.Add("cache/kmeans_uncached", uncached->first);
  json.Add("cache/kmeans_cached", cached->first);
  json.Add("cache/kmeans_speedup", speedup, "x");
  // The gate needs a machine where 10 redundant input rebuilds actually
  // dominate; single/dual-core CI runners stay informational.
  if (std::thread::hardware_concurrency() >= 4 && speedup < 1.5) {
    std::cerr << "REGRESSION: cached k-means only " << speedup
              << "x faster than uncached (need >= 1.5x)\n";
    return 1;
  }

  // ---- 2. Adaptive vs static sort ----
  const auto input =
      engine::PairsAsInput(RandomSortInput(sort_records, 0xcafe));
  workloads::SortPipelineOptions sort_options;
  sort_options.parallelism = 4;
  workloads::SortPipelineOptions adaptive_options = sort_options;
  adaptive_options.adaptive = true;
  adaptive_options.target_records_per_reducer = 16 << 10;
  adaptive_options.max_parallelism = 16;

  auto run_sort = [&](const workloads::SortPipelineOptions& options)
      -> Result<std::pair<double, runtime::PlanOutput>> {
    auto eng = engine::MakeEngine(engine_name);
    if (!eng.ok()) return eng.status();
    Stopwatch sw;
    auto out = (*eng)->RunPlan(workloads::SortPipelinePlan(input, options));
    if (!out.ok()) return out.status();
    return std::make_pair(sw.ElapsedSeconds(), std::move(*out));
  };

  auto static_sort = run_sort(sort_options);
  if (!static_sort.ok()) {
    std::cerr << "static sort failed: " << static_sort.status() << "\n";
    return 1;
  }
  auto adaptive_sort = run_sort(adaptive_options);
  if (!adaptive_sort.ok()) {
    std::cerr << "adaptive sort failed: " << adaptive_sort.status() << "\n";
    return 1;
  }
  if (adaptive_sort->second.Merged() != static_sort->second.Merged()) {
    std::cerr << "OUTPUT MISMATCH: adaptive sort diverged from static\n";
    return 1;
  }
  const int chosen_width =
      static_cast<int>(adaptive_sort->second.partitions.size());
  std::cout << "  sort " << sort_records << " records: static "
            << static_sort->first << " s at width "
            << sort_options.parallelism << ", adaptive "
            << adaptive_sort->first << " s at width " << chosen_width
            << " (byte-identical)\n";
  json.Add("cache/sort_static", static_sort->first);
  json.Add("cache/sort_adaptive", adaptive_sort->first);
  json.Add("cache/sort_adaptive_width", chosen_width, "tasks");

  if (!json.Write()) return 1;
  return 0;
}
