#include "common/random.h"

#include <cassert>
#include <cmath>

namespace dmb {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = Next64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(Next64());
  }
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

Rng Rng::Split() { return Rng(Next64()); }

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  assert(s > 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  h_integral_half_ = H(0.5);
}

// H(x) = integral of 1/t^s from 1 to x (generalized; handles s == 1).
double ZipfSampler::H(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) {
    return std::log(x);
  }
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::HInverse(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) {
    return std::exp(x);
  }
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  // Rejection-inversion (Hormann & Derflinger 1996).
  for (;;) {
    const double u =
        h_integral_half_ + rng->NextDouble() * (h_n_ - h_integral_half_);
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= h_x1_ ||
        u >= H(kd + 0.5) - std::exp(-s_ * std::log(kd))) {
      return k - 1;  // 0-based
    }
  }
}

double ZipfSampler::Pmf(uint64_t k) const {
  assert(k < n_);
  // Normalization via the generalized harmonic number, computed lazily and
  // approximately for large n (integral approximation + Euler-Maclaurin).
  const double kd = static_cast<double>(k + 1);
  double hn;
  if (n_ <= 10000) {
    hn = 0.0;
    for (uint64_t i = 1; i <= n_; ++i) {
      hn += std::pow(static_cast<double>(i), -s_);
    }
  } else {
    hn = 0.0;
    for (uint64_t i = 1; i <= 10000; ++i) {
      hn += std::pow(static_cast<double>(i), -s_);
    }
    // integral tail from 10000.5 to n+0.5
    const double a = 10000.5, b = static_cast<double>(n_) + 0.5;
    if (std::abs(s_ - 1.0) < 1e-12) {
      hn += std::log(b / a);
    } else {
      hn += (std::pow(b, 1 - s_) - std::pow(a, 1 - s_)) / (1 - s_);
    }
  }
  return std::pow(kd, -s_) / hn;
}

}  // namespace dmb
