// Shared helpers for the per-figure benchmark harnesses.

#ifndef DATAMPI_BENCH_BENCH_BENCH_UTIL_H_
#define DATAMPI_BENCH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "common/units.h"
#include "simfw/experiment.h"
#include "simfw/profiles.h"

namespace dmb::bench {

/// \brief Machine-readable benchmark results: collects (name, value,
/// unit) metrics and writes them as a JSON document, so BENCH_*.json
/// trajectory tracking has data. Enabled by a `--json <path>` flag.
class BenchJson {
 public:
  /// \brief Scans argv for `--json <path>` (or `--json=<path>`); the
  /// writer is disabled when the flag is absent.
  static BenchJson FromArgs(int argc, char** argv) {
    BenchJson json;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        json.path_ = argv[i + 1];
      } else if (arg.rfind("--json=", 0) == 0) {
        json.path_ = arg.substr(7);
      }
    }
    return json;
  }

  bool enabled() const { return !path_.empty(); }

  void Add(const std::string& name, double value,
           const std::string& unit = "s") {
    entries_.push_back(Entry{name, value, unit});
  }

  /// \brief Writes `{"benchmarks": [{"name":..., "value":..., "unit":...},
  /// ...]}` to the --json path. No-op when disabled; returns false on an
  /// unwritable path.
  bool Write() const {
    if (!enabled()) return true;
    std::ofstream out(path_);
    if (!out) {
      std::cerr << "bench: cannot write --json file " << path_ << "\n";
      return false;
    }
    out << "{\n  \"benchmarks\": [";
    for (size_t i = 0; i < entries_.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
          << Escape(entries_[i].name) << "\", \"value\": "
          << FormatDouble(entries_[i].value) << ", \"unit\": \""
          << Escape(entries_[i].unit) << "\"}";
    }
    out << "\n  ]\n}\n";
    std::cerr << "bench: wrote " << entries_.size() << " metrics to "
              << path_ << "\n";
    return out.good();
  }

 private:
  struct Entry {
    std::string name;
    double value;
    std::string unit;
  };

  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  static std::string FormatDouble(double v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  std::string path_;
  std::vector<Entry> entries_;
};

/// \brief Prints the testbed banner (Table 2 of the paper).
inline void PrintTestbed(std::ostream& os) {
  const cluster::ClusterSpec spec;
  os << "Simulated testbed (paper Table 2): " << spec.num_nodes
     << " nodes, " << spec.node.hw_threads << " HW threads/node, "
     << spec.node.memory_gb << " GB RAM, SATA disk ~"
     << spec.node.disk_mixed_mbps << " MB/s mixed, 1 GbE ("
     << spec.node.nic_mbps << " MB/s/dir); HDFS 256 MB blocks, 3 replicas, "
     << "4 tasks/workers per node.\n";
}

/// \brief "x% faster than" helper: 1 - a/b as the paper reports it.
inline double ImprovementOver(double ours, double baseline) {
  if (baseline <= 0) return 0.0;
  return 1.0 - ours / baseline;
}

/// \brief Formats a simulated result cell ("123.4" or "OOM" / "n/a").
inline std::string Cell(const simfw::SimJobResult& job) {
  if (job.status.IsOutOfMemory()) return "OOM";
  if (job.status.code() == StatusCode::kNotImplemented) return "n/a";
  if (!job.ok()) return "ERR";
  return TablePrinter::Num(job.seconds, 1);
}

}  // namespace dmb::bench

#endif  // DATAMPI_BENCH_BENCH_BENCH_UTIL_H_
