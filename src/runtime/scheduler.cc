#include "runtime/scheduler.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/wait_graph.h"
#include "runtime/stage_cache.h"
#include "shuffle/batch_channel.h"

namespace dmb::runtime {

namespace {

using engine::JobOutput;
using engine::JobSpec;

/// Execution record of one stage.
struct StageState {
  /// Parents that must still release this stage. A barrier parent
  /// releases on completion; a pipelined producer releases on submit.
  int remaining_deps = 0;
  /// Guards against double submission: a pipelined producer may zero a
  /// consumer's remaining_deps while the initial seeding loop is still
  /// walking the stages.
  bool submitted = false;
  bool skipped = false;
  /// Completion handler ran (guarded by the scheduler mutex); gates the
  /// early release of `output`.
  bool done = false;
  /// Child stages that have not completed yet; at zero (and done) an
  /// intermediate stage's `output` is dropped.
  int alive_consumers = 0;
  /// Shared because a pass-through stage forwards its state parent's
  /// output without copying.
  std::shared_ptr<JobOutput> output;
  /// Output served by the StageCache instead of an engine run (a cache
  /// hit, or a cached-input stage's split). Exactly one of `output` /
  /// `cached_output` is set for a completed stage; consumers read both
  /// through SharedParts.
  std::shared_ptr<const CachedPartitions> cached_output;
  /// Copy-on-write JobSpec an upstream adapt hook rewrote; written
  /// under the scheduler mutex strictly before this stage is submitted.
  std::unique_ptr<JobSpec> adapted_job;
  /// Stats copied out of `output` so it can be released early.
  engine::EngineStats run_stats;
  engine::StageStats stats;
  /// Producer half of a pipelined narrow edge out of this stage.
  std::shared_ptr<shuffle::BatchChannelGroup> out_channel;
  /// Consumer half of a pipelined narrow edge into this stage.
  std::shared_ptr<shuffle::BatchChannelGroup> in_channel;
  /// Producer side: no other reader of the materialized output exists,
  /// so the engine skips materializing it (stream is the only copy).
  bool stream_only = false;
};

/// The partitions a completed stage exposes to its consumers — from the
/// cache when the stage was a hit, aliased out of its JobOutput
/// otherwise. The aliasing shared_ptr co-owns the JobOutput, so a
/// consumer (or the cache) holding it keeps the data alive even after
/// the scheduler's early release drops `output`.
std::shared_ptr<const CachedPartitions> SharedParts(const StageState& state) {
  if (state.cached_output) return state.cached_output;
  return std::shared_ptr<const CachedPartitions>(state.output,
                                                 &state.output->partitions);
}

/// Even contiguous re-split of a flat record vector into `parts`
/// partition-aligned splits — the same slicing the engines apply to a
/// flat root input, so a cached-input stage's splits are byte-identical
/// to what its consumer would have seen from JobSpec.input.
std::shared_ptr<const CachedPartitions> SplitRecords(
    const std::vector<KVPair>& records, int parts) {
  auto splits = std::make_shared<CachedPartitions>(
      static_cast<size_t>(parts));
  const size_t n = records.size();
  for (int p = 0; p < parts; ++p) {
    const size_t begin = n * static_cast<size_t>(p) /
                         static_cast<size_t>(parts);
    const size_t end = n * static_cast<size_t>(p + 1) /
                       static_cast<size_t>(parts);
    (*splits)[static_cast<size_t>(p)].assign(records.begin() + begin,
                                             records.begin() + end);
  }
  return splits;
}

/// Runs one stage: bind, assemble input, execute. `states` of all
/// barrier input stages are final; a pipelined producer is merely
/// running (its channel is attached instead of its partitions).
Status RunOneStage(engine::Engine* engine, const Plan::Stage& stage,
                   const std::vector<std::unique_ptr<StageState>>& states,
                   StageState* state, StageCache* cache,
                   const std::shared_ptr<CancelToken>& cancel) {
  Stopwatch sw;
  state->stats.name = stage.spec.name;
  JobSpec job =
      state->adapted_job ? *state->adapted_job : stage.spec.job;
  // The job-level token reaches every stage's engine run (per-record
  // checks); a stage-spec token someone set explicitly wins.
  if (job.cancel == nullptr) job.cancel = cancel;
  if (job.cancel && job.cancel->cancelled()) {
    // Cancelled between submission and execution: don't run the binder
    // or touch the engine at all.
    return job.cancel->status();
  }

  if (!stage.spec.cache_output.empty() && cache != nullptr) {
    Result<CachedDataset> found = cache->Get(stage.spec.cache_output);
    if (found.ok()) {
      CachedDataset dataset = std::move(found).value();
      if (static_cast<int>(dataset.partitions->size()) == job.parallelism) {
        // Serve the stage from the cache: binder and engine never run.
        // A cache-keyed stage is never a pipelined producer, so no
        // consumer is waiting on a stream from it.
        state->cached_output = std::move(dataset.partitions);
        state->stats.cache_hit = true;
        state->stats.cache_restored = dataset.restored_from_spill;
        for (const auto& part : *state->cached_output) {
          state->stats.output_records += static_cast<int64_t>(part.size());
        }
        state->stats.wall_seconds = sw.ElapsedSeconds();
        return Status::OK();
      }
      // Partition count changed (e.g. the plan's parallelism differs
      // from the run that cached the key): treat as a miss and let the
      // re-run's Put replace the stale entry.
      state->stats.cache_miss = true;
    } else if (found.status().IsNotFound()) {
      state->stats.cache_miss = true;
    } else {
      // Spill-restore failure (corruption, I/O): a real error, not a
      // miss.
      return found.status();
    }
  }

  if (stage.spec.input_provider) {
    // Cached-input stage on a miss (or with no cache at all): build the
    // provider's records and split them partition-aligned. No engine
    // run.
    DMB_ASSIGN_OR_RETURN(auto records, stage.spec.input_provider());
    if (records == nullptr) {
      return Status::InvalidArgument(
          "stage '" + stage.spec.name +
          "': cached-input provider returned null records");
    }
    state->cached_output = SplitRecords(*records, job.parallelism);
    state->stats.output_records = static_cast<int64_t>(records->size());
    if (cache != nullptr) {
      DMB_ASSIGN_OR_RETURN(
          state->stats.cache_evictions,
          cache->Put(stage.spec.cache_output, state->cached_output));
      state->stats.cache_stored = true;
    }
    state->stats.wall_seconds = sw.ElapsedSeconds();
    return Status::OK();
  }

  const StageState* state_parent = nullptr;
  std::vector<const StageState*> data_parents;
  int narrow_edges = 0;
  int wide_edges = 0;
  for (const StageInput& in : stage.inputs) {
    const StageState* parent = states[static_cast<size_t>(in.stage)].get();
    if (in.kind == EdgeKind::kState) {
      state_parent = parent;
    } else {
      if (in.kind == EdgeKind::kNarrow) {
        ++narrow_edges;
      } else {
        ++wide_edges;
      }
      data_parents.push_back(parent);
    }
  }
  if (narrow_edges > 0 && wide_edges > 0) {
    // Plan::Validate rejects this shape up front; derive the routing
    // from a count instead of the old last-edge-wins flag so a future
    // validation gap can never silently misroute one parent's data.
    return Status::Internal(
        "stage '" + stage.spec.name +
        "': mixed narrow and wide data edges reached the scheduler");
  }
  const bool narrow = narrow_edges > 0;

  if (stage.spec.binder) {
    std::vector<KVPair> bind_state;
    if (state_parent != nullptr) {
      bind_state = engine::MergedPartitions(*SharedParts(*state_parent));
    }
    DMB_RETURN_NOT_OK(stage.spec.binder(bind_state, &job));
    if (!job.map_fn) {
      if (state_parent == nullptr) {
        return Status::InvalidArgument(
            "stage '" + stage.spec.name +
            "': binder cleared map_fn but the stage has no state parent "
            "to forward");
      }
      // Pass-through: the binder declined to run (e.g. a converged
      // iteration); forward the state parent's partitions unchanged.
      state->output = state_parent->output;
      state->cached_output = state_parent->cached_output;
      state->skipped = true;
      state->stats.skipped = true;
      if (state->out_channel) {
        // A pipelined consumer is already pulling: feed it the
        // forwarded partitions (one batch each) so the stream carries
        // the same bytes the barrier handoff would have.
        const auto shared = SharedParts(*state_parent);
        const auto& parts = *shared;
        if (static_cast<int>(parts.size()) !=
            state->out_channel->partitions()) {
          return Status::InvalidArgument(
              "stage '" + stage.spec.name + "': pass-through forwards " +
              std::to_string(parts.size()) +
              " partitions but its pipelined consumer expects " +
              std::to_string(state->out_channel->partitions()));
        }
        for (size_t p = 0; p < parts.size(); ++p) {
          DMB_RETURN_NOT_OK(state->out_channel->Push(
              static_cast<int>(p), std::vector<KVPair>(parts[p])));
        }
      }
      state->stats.wall_seconds = sw.ElapsedSeconds();
      return Status::OK();
    }
  }

  if (state->in_channel) {
    // Pipelined narrow edge: the producer is still running; map task p
    // pulls partition p's batches from the channel instead of aliasing
    // materialized partitions.
    if (job.parallelism != state->in_channel->partitions()) {
      return Status::InvalidArgument(
          "stage '" + stage.spec.name + "': pipelined narrow input has " +
          std::to_string(state->in_channel->partitions()) +
          " partitions but parallelism " + std::to_string(job.parallelism));
    }
    job.stream_input = state->in_channel;
    state->stats.pipelined = true;
  } else if (!data_parents.empty()) {
    if (narrow) {
      std::shared_ptr<const std::vector<std::vector<KVPair>>> splits;
      if (data_parents.size() == 1) {
        // Zero-copy handoff: share the parent's partitions directly
        // (cached or aliased out of its JobOutput).
        splits = SharedParts(*data_parents[0]);
      } else {
        auto first = SharedParts(*data_parents[0]);
        auto combined = std::make_shared<std::vector<std::vector<KVPair>>>(
            first->size());
        for (const StageState* parent : data_parents) {
          const auto shared = SharedParts(*parent);
          const auto& parts = *shared;
          if (parts.size() != combined->size()) {
            return Status::InvalidArgument(
                "stage '" + stage.spec.name +
                "': narrow parents disagree on partition count");
          }
          for (size_t p = 0; p < parts.size(); ++p) {
            auto& split = (*combined)[p];
            split.insert(split.end(), parts[p].begin(), parts[p].end());
          }
        }
        splits = std::move(combined);
      }
      if (static_cast<int>(splits->size()) != job.parallelism) {
        return Status::InvalidArgument(
            "stage '" + stage.spec.name + "': narrow input has " +
            std::to_string(splits->size()) + " partitions but parallelism " +
            std::to_string(job.parallelism));
      }
      job.input_splits = std::move(splits);
    } else {
      // Wide edge: materialization barrier — gather every parent
      // partition and let the stage's own shuffle redistribute.
      auto gathered = std::make_shared<std::vector<KVPair>>();
      for (const StageState* parent : data_parents) {
        const auto shared = SharedParts(*parent);
        for (const auto& part : *shared) {
          gathered->insert(gathered->end(), part.begin(), part.end());
        }
      }
      job.input = std::move(gathered);
    }
  }

  if (state->out_channel) {
    // Producer half of a pipelined edge: reduce tasks stream their
    // output into the channel as they emit.
    if (job.parallelism != state->out_channel->partitions()) {
      return Status::InvalidArgument(
          "stage '" + stage.spec.name +
          "': binder changed the parallelism of a pipelined producer (" +
          std::to_string(state->out_channel->partitions()) + " -> " +
          std::to_string(job.parallelism) + ")");
    }
    job.stream_output = state->out_channel;
    job.stream_output_only = state->stream_only;
  }

  // Statuses propagate verbatim: a workload's error message survives the
  // plan layer exactly as it survives a single Run.
  DMB_ASSIGN_OR_RETURN(JobOutput out, engine->RunStage(job));
  state->run_stats = out.stats;
  state->stats.shuffle_bytes = out.stats.shuffle_bytes;
  state->stats.spill_count = out.stats.spill_count;
  state->stats.spill_bytes_on_disk = out.stats.spill_bytes_on_disk;
  state->stats.output_records = out.stats.output_records;
  state->stats.parallel_shuffle_tasks = out.stats.parallel_shuffle_tasks;
  state->output = std::make_shared<JobOutput>(std::move(out));
  if (!stage.spec.cache_output.empty() && cache != nullptr &&
      !job.stream_output_only) {
    // Register the freshly materialized output. Shared, not copied: the
    // cache co-owns the JobOutput through the aliasing pointer, so the
    // scheduler's early release of `state->output` never invalidates
    // the entry (and vice versa — eviction only drops the cache's
    // reference).
    DMB_ASSIGN_OR_RETURN(
        state->stats.cache_evictions,
        cache->Put(stage.spec.cache_output, SharedParts(*state)));
    state->stats.cache_stored = true;
  }
  state->stats.wall_seconds = sw.ElapsedSeconds();
  return Status::OK();
}

/// Sums executed stages into the plan-wide stats and takes the output
/// stage's partitions (moved when exclusively owned — a pass-through
/// chain may still share them with the forwarding parent).
PlanOutput AssembleOutput(
    const Plan& plan,
    const std::vector<std::unique_ptr<StageState>>& states) {
  PlanOutput out;
  out.stats.stage_count = 0;
  for (const auto& state : states) {
    const StageState& s = *state;
    out.stats.stages.push_back(s.stats);
    out.stats.cache_hits += s.stats.cache_hit ? 1 : 0;
    out.stats.cache_misses += s.stats.cache_miss ? 1 : 0;
    out.stats.cache_evictions += s.stats.cache_evictions;
    out.stats.cache_spill_restores += s.stats.cache_restored ? 1 : 0;
    if (s.skipped) continue;
    if (s.cached_output) {
      // Served from the cache (hit) or split driver-side (cached-input
      // stage): no engine ran, so there is no run_stats slice to sum —
      // only the records it handed downstream.
      out.stats.output_records += s.stats.output_records;
      continue;
    }
    ++out.stats.stage_count;
    // Summed from the copy taken at run time: the stage's JobOutput may
    // already have been released (dropped once its last consumer
    // finished).
    const engine::EngineStats& st = s.run_stats;
    out.stats.map_output_records += st.map_output_records;
    out.stats.shuffle_bytes += st.shuffle_bytes;
    out.stats.spill_count += st.spill_count;
    out.stats.spill_bytes_raw += st.spill_bytes_raw;
    out.stats.spill_bytes_on_disk += st.spill_bytes_on_disk;
    out.stats.blocks_read += st.blocks_read;
    out.stats.reduce_input_records += st.reduce_input_records;
    out.stats.output_records += st.output_records;
    out.stats.parallel_shuffle_tasks += st.parallel_shuffle_tasks;
  }
  StageState& fin = *states[static_cast<size_t>(plan.output_stage())];
  if (fin.cached_output) {
    // The plan's output is a cache entry; copy, the cache keeps its own.
    out.partitions = *fin.cached_output;
  } else if (fin.output.use_count() == 1) {
    out.partitions = std::move(fin.output->partitions);
  } else {
    out.partitions = fin.output->partitions;
  }
  return out;
}

/// The Replanner handed to one stage's adapt hook: rewrites are only
/// allowed into stages strictly downstream of the observed stage that
/// have not been submitted yet (the hook runs under the scheduler lock
/// before any child is released, so every not-yet-submitted downstream
/// stage is still rewritable).
class ScopedReplanner : public Replanner {
 public:
  ScopedReplanner(const Plan& plan,
                  std::vector<std::unique_ptr<StageState>>* states,
                  const std::function<bool(int, int)>& downstream_of,
                  int observer)
      : plan_(plan),
        states_(states),
        downstream_of_(downstream_of),
        observer_(observer) {}

  JobSpec* MutableJob(int stage) override {
    if (stage < 0 || stage >= static_cast<int>(states_->size())) {
      return nullptr;
    }
    if (stage == observer_ || !downstream_of_(observer_, stage)) {
      return nullptr;
    }
    StageState* s = (*states_)[static_cast<size_t>(stage)].get();
    if (s->submitted) return nullptr;
    if (!s->adapted_job) {
      s->adapted_job = std::make_unique<JobSpec>(
          plan_.stages()[static_cast<size_t>(stage)].spec.job);
      s->stats.adapted = true;
    }
    return s->adapted_job.get();
  }

 private:
  const Plan& plan_;
  std::vector<std::unique_ptr<StageState>>* states_;
  const std::function<bool(int, int)>& downstream_of_;
  int observer_;
};

}  // namespace

StageScheduler::StageScheduler(engine::Engine* engine, const Plan& plan,
                               SchedulerOptions options)
    : engine_(engine), plan_(plan), options_(std::move(options)) {}

Result<PlanOutput> StageScheduler::Execute() {
  DMB_RETURN_NOT_OK(plan_.Validate());
  // A token that fired before the first stage submits cancels the plan
  // outright — nothing runs, the token's status comes back verbatim.
  if (options_.cancel && options_.cancel->cancelled()) {
    return options_.cancel->status();
  }
  const auto& stages = plan_.stages();
  const size_t n = stages.size();
  const PlanOptions& popts = plan_.options();
  const int output_stage = plan_.output_stage();

  std::vector<std::unique_ptr<StageState>> states;
  if (n == 1) {
    // Fast path for the degenerate one-stage plan (every Engine::Run):
    // no thread pool, no scheduling state — just the stage.
    states.push_back(std::make_unique<StageState>());
    // (An adapt hook on a single-stage plan is a no-op: nothing is
    // downstream to rewrite.)
    DMB_RETURN_NOT_OK(RunOneStage(engine_, stages[0], states,
                                  states[0].get(), options_.cache,
                                  options_.cancel));
    return AssembleOutput(plan_, states);
  }

  std::vector<std::vector<int>> children(n);
  std::vector<std::vector<int>> parents_of(n);
  states.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    states.push_back(std::make_unique<StageState>());
    // Count each parent once even when it feeds several edges (e.g. a
    // stage consuming a parent as both data and state).
    std::vector<int> parents;
    for (const StageInput& in : stages[i].inputs) parents.push_back(in.stage);
    std::sort(parents.begin(), parents.end());
    parents.erase(std::unique(parents.begin(), parents.end()),
                  parents.end());
    states[i]->remaining_deps = static_cast<int>(parents.size());
    for (int p : parents) children[static_cast<size_t>(p)].push_back(
        static_cast<int>(i));
    parents_of[i] = std::move(parents);
  }
  for (size_t i = 0; i < n; ++i) {
    states[i]->alive_consumers = static_cast<int>(children[i].size());
  }

  // Pipelining analysis: stage c consumes producer p over the batch
  // channel iff the plan opted in, c's record input is exactly one
  // narrow edge from p, none of c's other parents needs p *final*
  // first (a state edge from p itself, or any parent downstream of p —
  // such a consumer could not start pulling until p completed, so the
  // producer would block on backpressure forever), and p does not
  // already feed another pipelined consumer. Everything else keeps the
  // barrier handoff.
  std::vector<int> pipe_child(n, -1);  // producer -> consumer

  // True iff `to` is reachable from `from` over parent->child edges.
  // Edges always point at higher stage ids, so the walk is a simple
  // forward sweep.
  auto downstream_of = [&](int from, int to) {
    std::vector<int> frontier{from};
    std::vector<bool> seen(n, false);
    while (!frontier.empty()) {
      const int node = frontier.back();
      frontier.pop_back();
      if (node == to) return true;
      for (int child : children[static_cast<size_t>(node)]) {
        if (child <= to && !seen[static_cast<size_t>(child)]) {
          seen[static_cast<size_t>(child)] = true;
          frontier.push_back(child);
        }
      }
    }
    return false;
  };

  bool any_adapt = false;
  for (size_t i = 0; i < n; ++i) {
    if (stages[i].spec.adapt) any_adapt = true;
  }

  bool any_pipelined = false;
  // A plan with an adapt hook never pipelines: downstream stage shapes
  // (parallelism, partitioner) are not known until the producer's
  // output has landed, which is exactly what a pipelined edge skips.
  if (popts.pipeline_narrow_edges && !any_adapt) {
    for (size_t i = 0; i < n; ++i) {
      int data_edges = 0;
      int narrow_parent = -1;
      bool all_narrow = true;
      int state_parent = -1;
      for (const StageInput& in : stages[i].inputs) {
        if (in.kind == EdgeKind::kState) {
          state_parent = in.stage;
        } else {
          ++data_edges;
          narrow_parent = in.stage;
          if (in.kind != EdgeKind::kNarrow) all_narrow = false;
        }
      }
      if (data_edges != 1 || !all_narrow) continue;
      // The binder consumes its state parent *final*: a state edge from
      // the producer itself can never stream.
      if (state_parent == narrow_parent) continue;
      // A cache-keyed producer (including a cached-input stage) must
      // materialize its partitions for the cache — and on a hit nothing
      // would ever push into the stream — so it keeps the barrier
      // handoff.
      if (!stages[static_cast<size_t>(narrow_parent)]
               .spec.cache_output.empty()) {
        continue;
      }
      bool blocked_parent = false;
      for (int parent : parents_of[i]) {
        if (parent != narrow_parent &&
            downstream_of(narrow_parent, parent)) {
          // This parent transitively waits for the producer to
          // complete, so the consumer could not start pulling until
          // the producer finished — the producer would park on
          // backpressure forever. Keep the barrier handoff.
          blocked_parent = true;
          break;
        }
      }
      if (blocked_parent) continue;
      if (pipe_child[static_cast<size_t>(narrow_parent)] != -1) continue;
      pipe_child[static_cast<size_t>(narrow_parent)] =
          static_cast<int>(i);
      any_pipelined = true;
    }
  }

  // Execution-wide sync state, shared by reference with the stage tasks
  // and the cancel callback. The fields are accessed through lambdas —
  // which clang's thread-safety analysis cannot annotate — so they
  // carry no DMB_GUARDED_BY; the TSan pass and the WaitGraph cover this
  // block instead. lint:allow(mutex-unguarded)
  struct ExecSync {
    Mutex mu;  // lint:allow(mutex-unguarded) — see block comment above
    CondVar cv;
    Status error;
    int in_flight = 0;
    size_t done_count = 0;
  } sync;

  // With pipelined edges every stage of the plan may legitimately be
  // resident at once (producers block on backpressure until their
  // consumers run), so the pool must never be the reason a consumer
  // cannot start.
  const int pool_threads =
      any_pipelined
          ? std::max(options_.max_concurrent_stages, static_cast<int>(n))
          : std::max(1, options_.max_concurrent_stages);
  // The width decision is per plan: only a plan that actually pipelined
  // an edge may claim more threads than max_concurrent_stages. A
  // barrier-only plan widening the pool would silently oversubscribe
  // every Execute() on wide DAGs.
  DMB_CHECK(any_pipelined ||
            pool_threads <= std::max(1, options_.max_concurrent_stages));
  if (options_.on_pool_width) options_.on_pool_width(pool_threads);
  // Barrier-only plans may run their stage tasks on a caller-provided
  // shared pool (the JobServer multiplexing many plans over one pool);
  // a pipelined plan needs threads >= its stage count to itself — a
  // producer parked on backpressure holds its thread — so it always
  // builds a private pool.
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = options_.stage_pool;
  if (pool == nullptr || any_pipelined) {
    owned_pool = std::make_unique<ThreadPool>(pool_threads);
    pool = owned_pool.get();
  }

  // Drops an intermediate stage's retained output once it is done and
  // its last consumer completed (mu held).
  auto maybe_release = [&](int sid) {
    StageState* s = states[static_cast<size_t>(sid)].get();
    if (!s->done || s->alive_consumers > 0 || sid == output_stage ||
        (!s->output && !s->cached_output)) {
      return;
    }
    // Dropping the scheduler's references only; a StageCache entry (or
    // any consumer-held shared_ptr) keeps the data itself alive — a
    // cached output is never double-released.
    s->output.reset();
    s->cached_output.reset();
    if (options_.on_stage_output_released) {
      options_.on_stage_output_released(sid);
    }
  };

  // downstream_of as a std::function, for the Replanner.
  const std::function<bool(int, int)> downstream_fn = downstream_of;

  // Submits stage `sid` (mu held). The stage task re-locks to publish
  // its result and hand newly-ready children back to the pool.
  std::function<void(int)> submit = [&](int sid) {
    StageState* state = states[static_cast<size_t>(sid)].get();
    if (state->submitted) return;
    state->submitted = true;
    const int pc = pipe_child[static_cast<size_t>(sid)];
    if (pc != -1) {
      // This stage produces into a pipelined edge: create the channel
      // and release the consumer now — per-edge readiness instead of
      // "submit only when all deps are final".
      shuffle::BatchChannelGroup::Options copts;
      copts.partitions = stages[static_cast<size_t>(sid)].spec.job.parallelism;
      copts.batch_records =
          static_cast<size_t>(popts.pipeline_batch_records);
      copts.max_buffered_batches =
          static_cast<size_t>(popts.pipeline_channel_batches);
      auto channel = std::make_shared<shuffle::BatchChannelGroup>(copts);
      state->out_channel = channel;
      // When the pipelined consumer is the only reader, the stream is
      // the output: skip materializing the partitions entirely.
      state->stream_only =
          children[static_cast<size_t>(sid)].size() == 1 &&
          sid != output_stage;
      StageState* cs = states[static_cast<size_t>(pc)].get();
      cs->in_channel = channel;
      if (--cs->remaining_deps == 0) submit(pc);
    }
    ++sync.in_flight;
    const bool accepted = pool->Submit([&, sid, state] {
      // WaitGraph: the plan-completion wait below parks on &sync; the
      // stage tasks are what it is waiting for.
      HoldScope running(&sync, "in-flight stage task");
      Status st = RunOneStage(engine_, stages[static_cast<size_t>(sid)],
                              states, state, options_.cache,
                              options_.cancel);
      // Producer side: close every still-open partition — a clean close
      // ends the consumer's pull loop, an error reaches it verbatim.
      if (state->out_channel) state->out_channel->CloseAll(st);
      // Consumer side: a failed consumer aborts its producer's pushes
      // with the same error; a successful one (e.g. a skipped
      // pass-through that never drained) lets them drop silently.
      if (state->in_channel) state->in_channel->Cancel(st);
      MutexLock lock(sync.mu);
      ++sync.done_count;
      --sync.in_flight;
      state->done = true;
      const auto& adapt = stages[static_cast<size_t>(sid)].spec.adapt;
      if (st.ok() && sync.error.ok() && adapt) {
        // Adaptive re-planning: the stage's output has landed and no
        // child has been released yet, so the hook sees final
        // per-partition sizes and every not-yet-submitted downstream
        // stage is still rewritable. Runs under the scheduler lock —
        // hooks must stay cheap.
        const auto shared = SharedParts(*state);
        StageObservation obs;
        obs.stage = sid;
        obs.partition_records.reserve(shared->size());
        obs.partition_bytes.reserve(shared->size());
        for (const auto& part : *shared) {
          int64_t bytes = 0;
          for (const KVPair& kv : part) {
            bytes += static_cast<int64_t>(kv.key.size() + kv.value.size());
          }
          obs.partition_records.push_back(static_cast<int64_t>(part.size()));
          obs.partition_bytes.push_back(bytes);
          obs.output_records += static_cast<int64_t>(part.size());
          obs.output_bytes += bytes;
        }
        ScopedReplanner replanner(plan_, &states, downstream_fn, sid);
        st = adapt(obs, &replanner);
        if (!st.ok()) {
          st = st.WithContext("adapt hook of stage '" +
                              stages[static_cast<size_t>(sid)].spec.name +
                              "'");
        }
      }
      if (!st.ok()) {
        if (sync.error.ok()) {
          sync.error = st;
          // Unblock every pipelined stage still in flight: producers
          // stuck on backpressure fail their next Push, consumers
          // waiting on a never-submitted producer fail their next Pull.
          for (const auto& other : states) {
            if (other->out_channel) other->out_channel->Cancel(sync.error);
          }
        }
      } else if (sync.error.ok()) {
        for (int child : children[static_cast<size_t>(sid)]) {
          if (child == pipe_child[static_cast<size_t>(sid)]) continue;
          StageState* cs = states[static_cast<size_t>(child)].get();
          if (--cs->remaining_deps == 0) submit(child);
        }
        // Early release: this stage may already be drained (no
        // consumers), and its parents may have just lost their last
        // consumer.
        maybe_release(sid);
        for (int parent : parents_of[static_cast<size_t>(sid)]) {
          StageState* ps = states[static_cast<size_t>(parent)].get();
          if (--ps->alive_consumers == 0) maybe_release(parent);
        }
      }
      sync.cv.NotifyAll();
    });
    if (!accepted) {
      // A shared pool shut down under us (server teardown). Fail the
      // plan instead of waiting forever for a task that will never run.
      --sync.in_flight;
      if (sync.error.ok()) {
        sync.error = Status::Cancelled(
            "stage pool shut down before stage '" +
            stages[static_cast<size_t>(sid)].spec.name + "' could run");
      }
    }
  };

  // Cancellation fans out exactly like a stage failure: latch the
  // token's status as the plan error (nothing else is submitted) and
  // cancel every in-flight batch channel so blocked producers/consumers
  // unblock; running stages stop at their next record via the token in
  // their JobSpec.
  CancelToken::CallbackId cancel_cb = 0;
  if (options_.cancel) {
    cancel_cb = options_.cancel->AddCallback([&](const Status& st) {
      MutexLock lock(sync.mu);
      if (sync.error.ok()) {
        sync.error = st;
        for (const auto& other : states) {
          if (other->out_channel) other->out_channel->Cancel(st);
        }
      }
      sync.cv.NotifyAll();
    });
  }

  {
    MutexLock lock(sync.mu);
    for (size_t i = 0; i < n; ++i) {
      if (states[i]->remaining_deps == 0) submit(static_cast<int>(i));
    }
  }
  {
    MutexLock lock(sync.mu);
    while (!(sync.in_flight == 0 &&
             (sync.done_count == n || !sync.error.ok()))) {
      WaitScope waiting(&sync, "StageScheduler::Execute plan completion");
      sync.cv.Wait(sync.mu);
    }
  }
  if (owned_pool) owned_pool->Shutdown();
  // After removal the callback can no longer run, so the locals it
  // captures (sync, states) are safe to destroy.
  if (options_.cancel) options_.cancel->RemoveCallback(cancel_cb);
  DMB_RETURN_NOT_OK(sync.error);
  return AssembleOutput(plan_, states);
}

}  // namespace dmb::runtime
