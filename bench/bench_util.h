// Shared helpers for the per-figure benchmark harnesses.

#ifndef DATAMPI_BENCH_BENCH_BENCH_UTIL_H_
#define DATAMPI_BENCH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <iostream>
#include <string>

#include "common/table_printer.h"
#include "common/units.h"
#include "simfw/experiment.h"
#include "simfw/profiles.h"

namespace dmb::bench {

/// \brief Prints the testbed banner (Table 2 of the paper).
inline void PrintTestbed(std::ostream& os) {
  const cluster::ClusterSpec spec;
  os << "Simulated testbed (paper Table 2): " << spec.num_nodes
     << " nodes, " << spec.node.hw_threads << " HW threads/node, "
     << spec.node.memory_gb << " GB RAM, SATA disk ~"
     << spec.node.disk_mixed_mbps << " MB/s mixed, 1 GbE ("
     << spec.node.nic_mbps << " MB/s/dir); HDFS 256 MB blocks, 3 replicas, "
     << "4 tasks/workers per node.\n";
}

/// \brief "x% faster than" helper: 1 - a/b as the paper reports it.
inline double ImprovementOver(double ours, double baseline) {
  if (baseline <= 0) return 0.0;
  return 1.0 - ours / baseline;
}

/// \brief Formats a simulated result cell ("123.4" or "OOM" / "n/a").
inline std::string Cell(const simfw::SimJobResult& job) {
  if (job.status.IsOutOfMemory()) return "OOM";
  if (job.status.code() == StatusCode::kNotImplemented) return "n/a";
  if (!job.ok()) return "ERR";
  return TablePrinter::Num(job.seconds, 1);
}

}  // namespace dmb::bench

#endif  // DATAMPI_BENCH_BENCH_BENCH_UTIL_H_
