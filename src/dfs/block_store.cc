#include "dfs/block_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/hash.h"

namespace dmb::dfs {

namespace {

/// Hex of a 64-bit hash — flat, filesystem-safe store file names for
/// arbitrary logical paths.
std::string HexName(uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

BlockStore::BlockStore(std::string root_dir, io::BlockFileOptions options)
    : root_dir_(std::move(root_dir)), options_(options) {
  // Same bounds BlockWriter enforces on its own copy — Put() also
  // chunks the payload by this value, so 0 must not reach the loop.
  options_.block_bytes =
      std::clamp<int64_t>(options_.block_bytes, 1, int64_t{1} << 30);
}

std::string BlockStore::StorePath(const std::string& path) const {
  return root_dir_ + "/" + HexName(Hash64(path)) + ".blk";
}

Status BlockStore::Put(const std::string& path, std::string_view payload) {
  // Write to a temp name and rename on success, so a failed overwrite
  // never destroys the previously stored payload.
  const std::string final_path = StorePath(path);
  const auto owner = owners_.find(final_path);
  if (owner != owners_.end() && owner->second != path) {
    return Status::Internal("path hash collision: '" + path + "' vs '" +
                            owner->second + "'");
  }
  const std::string tmp_path = final_path + ".tmp";
  io::BlockWriter writer(tmp_path, options_);
  // Chunk the payload at block granularity: each chunk is one record,
  // so blocks hold exactly one chunk and Get() decodes block by block.
  const size_t chunk = static_cast<size_t>(options_.block_bytes);
  Status st;
  for (size_t off = 0; st.ok() && off < payload.size(); off += chunk) {
    st = writer.AppendRecord(
        payload.substr(off, std::min(chunk, payload.size() - off)));
  }
  if (st.ok()) st = writer.Finish();
  if (st.ok()) {
    std::error_code ec;
    std::filesystem::rename(tmp_path, final_path, ec);
    if (ec) {
      st = Status::IOError("rename " + tmp_path + " -> " + final_path +
                           ": " + ec.message());
    }
  }
  if (!st.ok()) {
    std::remove(tmp_path.c_str());  // no orphaned partial writes
    return st;
  }
  auto [it, inserted] = files_.try_emplace(path);
  if (!inserted) {
    raw_bytes_ -= it->second.raw_bytes;
    stored_bytes_ -= it->second.stored_bytes;
  }
  it->second.raw_bytes = writer.stats().raw_bytes;
  it->second.stored_bytes = writer.stats().file_bytes;
  raw_bytes_ += it->second.raw_bytes;
  stored_bytes_ += it->second.stored_bytes;
  owners_[final_path] = path;
  return Status::OK();
}

Result<std::string> BlockStore::Get(const std::string& path) const {
  if (!files_.count(path)) {
    return Status::NotFound("no such stored file: " + path);
  }
  DMB_ASSIGN_OR_RETURN(io::BlockReader reader,
                       io::BlockReader::Open(StorePath(path)));
  std::string payload;
  payload.reserve(static_cast<size_t>(reader.stats().raw_bytes));
  std::string block;
  for (size_t i = 0; i < reader.block_count(); ++i) {
    DMB_RETURN_NOT_OK(reader.ReadBlock(i, &block));
    payload += block;
  }
  return payload;
}

bool BlockStore::Exists(const std::string& path) const {
  return files_.count(path) != 0;
}

Status BlockStore::Delete(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such stored file: " + path);
  }
  raw_bytes_ -= it->second.raw_bytes;
  stored_bytes_ -= it->second.stored_bytes;
  files_.erase(it);
  owners_.erase(StorePath(path));
  std::remove(StorePath(path).c_str());
  return Status::OK();
}

}  // namespace dmb::dfs
