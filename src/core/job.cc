#include "core/job.h"

#include <algorithm>
#include <map>

#include "common/byte_buffer.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/temp_dir.h"
#include "common/thread_annotations.h"
#include "io/run_file.h"
#include "mpilite/mpilite.h"
#include "shuffle/kv_arena.h"

namespace dmb::datampi {

namespace {

constexpr int64_t kDataTag = 1;
constexpr int64_t kEosTag = 2;

struct SharedState {
  std::atomic<int> next_o_task{0};
  std::atomic<int64_t> o_records{0};
  std::atomic<int64_t> shuffle_bytes{0};
  std::atomic<int64_t> shuffle_batches{0};
  std::atomic<int64_t> a_records{0};
  std::atomic<int64_t> a_spills{0};
  std::atomic<int64_t> a_spill_bytes_raw{0};
  std::atomic<int64_t> a_spill_bytes_on_disk{0};
  std::atomic<int64_t> a_blocks_read{0};
  std::atomic<int64_t> output_records{0};
  std::atomic<int64_t> parallel_tasks{0};
  std::atomic<int> max_wave{0};
  Mutex output_mu;
  std::vector<std::vector<KVPair>> a_outputs DMB_GUARDED_BY(output_mu);
};

class OContextImpl : public OContext {
 public:
  OContextImpl(const JobConfig& config, mpi::Comm* world, SharedState* shared)
      : config_(config),
        world_(world),
        shared_(shared),
        partitions_(static_cast<size_t>(config.num_a_ranks)) {}

  Status Emit(std::string_view key, std::string_view value) override {
    shared_->o_records.fetch_add(1, std::memory_order_relaxed);
    if (config_.num_a_ranks == 1) {
      // Single A rank: no routing decision to batch.
      auto& part = partitions_[0];
      part.slices.push_back(part.arena.Add(key, value));
      return MaybeFlush(0);
    }
    // Stage and route kEmitBatchRecords at a time: one virtual
    // PartitionBatch call (tight hash + route loops) replaces a virtual
    // Partition per record, at the cost of one extra arena copy.
    staged_slices_.push_back(staging_.Add(key, value));
    if (staged_slices_.size() >= kEmitBatchRecords) return RouteStaged();
    return Status::OK();
  }

  int task_id() const override { return task_id_; }
  int num_a_ranks() const override { return config_.num_a_ranks; }

  void set_task_id(int id) { task_id_ = id; }
  void set_partitioner(const Partitioner* p) { partitioner_ = p; }

  Status FlushAll() {
    DMB_RETURN_NOT_OK(RouteStaged());
    for (int p = 0; p < config_.num_a_ranks; ++p) {
      DMB_RETURN_NOT_OK(FlushPartition(p));
    }
    return Status::OK();
  }

 private:
  /// Budget charge per buffered record beyond the raw payload (the
  /// slice itself), mirroring the seed's +8/record estimate closely
  /// enough to keep flush cadence comparable.
  static constexpr int64_t kSliceOverheadBytes = 8;
  /// Emits staged before one batched routing pass (matches
  /// shuffle::PartitionedCollector::kRouteBatchRecords).
  static constexpr size_t kEmitBatchRecords = 256;

  /// Per-partition pipeline buffer on the shuffle layer's arena path:
  /// payload bytes in one flat KVArena, records as 24-byte slices —
  /// the same representation PartitionedCollector uses, instead of the
  /// seed's per-batch std::vector<KVPair> re-sort.
  struct PartitionBuffer {
    shuffle::KVArena arena;
    std::vector<shuffle::KVSlice> slices;
  };

  /// Routes every staged record to its partition buffer in one batched
  /// partitioner call, then runs the flush checks once per batch (a
  /// buffer may overshoot send_buffer_bytes by at most one staged
  /// batch, which the wire format does not care about).
  Status RouteStaged() {
    const size_t n = staged_slices_.size();
    if (n == 0) return Status::OK();
    staged_keys_.resize(n);
    staged_parts_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      staged_keys_[i] = staging_.KeyOf(staged_slices_[i]);
    }
    partitioner_->PartitionBatch(staged_keys_.data(), n, config_.num_a_ranks,
                                 staged_parts_.data());
    for (size_t i = 0; i < n; ++i) {
      auto& part = partitions_[static_cast<size_t>(staged_parts_[i])];
      const shuffle::KVSlice& s = staged_slices_[i];
      part.slices.push_back(
          part.arena.Add(staging_.KeyOf(s), staging_.ValueOf(s)));
    }
    staged_slices_.clear();
    staging_.Clear();
    for (int p = 0; p < config_.num_a_ranks; ++p) {
      DMB_RETURN_NOT_OK(MaybeFlush(p));
    }
    return Status::OK();
  }

  Status MaybeFlush(int p) {
    const auto& part = partitions_[static_cast<size_t>(p)];
    if (part.arena.bytes() +
            static_cast<int64_t>(part.slices.size()) * kSliceOverheadBytes >=
        config_.send_buffer_bytes) {
      return FlushPartition(p);
    }
    return Status::OK();
  }

  Status FlushPartition(int p) {
    auto& part = partitions_[static_cast<size_t>(p)];
    if (part.slices.empty()) return Status::OK();
    ByteBuffer wire;
    if (config_.combiner) {
      // Group the batch locally and combine each key's values before the
      // pairs hit the wire (WordCount-style traffic reduction). Sorting
      // moves slices with cached key prefixes, not string pairs.
      int64_t spawned = 0;
      part.arena.Sort(&part.slices, config_.parallel, &spawned);
      if (spawned > 0) {
        shared_->parallel_tasks.fetch_add(spawned, std::memory_order_relaxed);
      }
      size_t i = 0;
      std::vector<std::string> values;
      while (i < part.slices.size()) {
        const std::string_view key = part.arena.KeyOf(part.slices[i]);
        values.clear();
        while (i < part.slices.size() &&
               part.arena.KeyOf(part.slices[i]) == key) {
          values.emplace_back(part.arena.ValueOf(part.slices[i]));
          ++i;
        }
        const std::string combined = config_.combiner(key, values);
        EncodeKV(&wire, key, combined);
      }
    } else {
      for (const auto& s : part.slices) {
        EncodeKV(&wire, part.arena.KeyOf(s), part.arena.ValueOf(s));
      }
    }
    part.slices.clear();
    part.arena.Clear();
    shared_->shuffle_bytes.fetch_add(static_cast<int64_t>(wire.size()),
                                     std::memory_order_relaxed);
    shared_->shuffle_batches.fetch_add(1, std::memory_order_relaxed);
    const int a_world_rank = config_.num_o_ranks + p;
    return world_->Send(a_world_rank, kDataTag, std::string(wire.view()));
  }

  const JobConfig& config_;
  mpi::Comm* world_;
  SharedState* shared_;
  std::vector<PartitionBuffer> partitions_;
  /// Arrival-order records awaiting one batched routing pass, plus the
  /// scratch arrays the pass reuses.
  shuffle::KVArena staging_;
  std::vector<shuffle::KVSlice> staged_slices_;
  std::vector<std::string_view> staged_keys_;
  std::vector<int> staged_parts_;
  const Partitioner* partitioner_ = nullptr;
  int task_id_ = -1;
};

/// A-side output collector: the shared stream-aware tee behind an
/// AEmitter face (retains a_outputs and/or streams into the job's
/// output channel; a push failure is sticky in status()).
class VectorEmitter : public AEmitter {
 public:
  VectorEmitter(shuffle::BatchStreamWriter* stream, bool retain)
      : tee_(stream, retain) {}

  void Emit(std::string_view key, std::string_view value) override {
    tee_.Collect(key, value);
  }
  std::vector<KVPair> Take() { return tee_.Take(); }
  int64_t records() const { return tee_.records(); }
  const Status& status() const { return tee_.status(); }

 private:
  shuffle::StreamTeeCollector tee_;
};

Status RunOTasks(const JobConfig& config, mpi::Comm& world,
                 SharedState* shared, const OTaskFn& o_fn,
                 const Partitioner* partitioner) {
  OContextImpl ctx(config, &world, shared);
  ctx.set_partitioner(partitioner);
  const int total_tasks =
      config.num_o_tasks > 0 ? config.num_o_tasks : config.num_o_ranks;
  int wave = 0;
  Status status;
  for (;;) {
    // Dynamic scheduling: O ranks claim logical tasks from a shared
    // counter (in-process stand-in for DataMPI's task scheduler).
    const int task = shared->next_o_task.fetch_add(1);
    if (task >= total_tasks) break;
    ctx.set_task_id(task);
    status = o_fn(&ctx);
    if (!status.ok()) break;
    ++wave;
  }
  int prev = shared->max_wave.load();
  while (wave > prev &&
         !shared->max_wave.compare_exchange_weak(prev, wave)) {
  }
  if (status.ok()) status = ctx.FlushAll();
  // End-of-stream markers are sent even on failure so A ranks never hang
  // waiting for a dead producer.
  for (int a = 0; a < config.num_a_ranks; ++a) {
    Status send_st = world.Send(config.num_o_ranks + a, kEosTag, "");
    if (status.ok()) status = send_st;
  }
  return status;
}

Status ReduceBuffer(const JobConfig& config, int a_rank,
                    SpillableKVBuffer* buffer, SharedState* shared,
                    const AGroupFn& a_fn) {
  shared->a_records.fetch_add(buffer->records_added(),
                              std::memory_order_relaxed);
  shared->a_spills.fetch_add(buffer->spill_count(),
                             std::memory_order_relaxed);
  shared->a_spill_bytes_raw.fetch_add(buffer->spilled_raw_bytes(),
                                      std::memory_order_relaxed);
  shared->a_spill_bytes_on_disk.fetch_add(buffer->spilled_bytes(),
                                          std::memory_order_relaxed);
  DMB_ASSIGN_OR_RETURN(std::unique_ptr<KVGroupIterator> groups,
                       buffer->Finish());
  std::unique_ptr<shuffle::BatchStreamWriter> stream;
  if (config.output_stream != nullptr) {
    stream = std::make_unique<shuffle::BatchStreamWriter>(
        config.output_stream.get(), a_rank);
  }
  VectorEmitter emitter(stream.get(), !config.stream_output_only);
  std::string key;
  std::vector<std::string> values;
  while (groups->NextGroup(&key, &values)) {
    DMB_RETURN_NOT_OK(a_fn(key, values, &emitter));
    DMB_RETURN_NOT_OK(emitter.status());
  }
  DMB_RETURN_NOT_OK(groups->status());
  if (stream != nullptr) {
    DMB_RETURN_NOT_OK(stream->Finish());
  }
  shared->a_blocks_read.fetch_add(groups->blocks_read(),
                                  std::memory_order_relaxed);
  // After the group sweep: Finish()-time parallel sorts are counted too.
  shared->parallel_tasks.fetch_add(buffer->parallel_tasks(),
                                   std::memory_order_relaxed);
  shared->output_records.fetch_add(emitter.records(),
                                   std::memory_order_relaxed);
  MutexLock lock(shared->output_mu);
  shared->a_outputs[static_cast<size_t>(a_rank)] = emitter.Take();
  return Status::OK();
}

std::string CheckpointPath(const JobConfig& config, int a_rank) {
  return config.checkpoint_dir + "/a-" + std::to_string(a_rank) + ".ckpt";
}

Status RunATask(const JobConfig& config, mpi::Comm& world, int a_rank,
                SharedState* shared, const AGroupFn& a_fn) {
  KVBufferOptions options;
  options.memory_budget_bytes = config.a_memory_budget_bytes;
  options.sort_by_key = config.sort_by_key;
  options.spill_io = config.spill_io;
  options.parallel = config.parallel;
  SpillableKVBuffer buffer(options);
  // Checkpoints stream through the io block format (checksummed,
  // optionally compressed blocks of EncodeKV records), so a restart can
  // detect any corruption instead of replaying damaged shuffle data.
  std::unique_ptr<io::SpillFileWriter> ckpt;
  if (!config.checkpoint_dir.empty()) {
    ckpt = std::make_unique<io::SpillFileWriter>(
        CheckpointPath(config, a_rank), config.spill_io);
  }
  int eos_seen = 0;
  while (eos_seen < config.num_o_ranks) {
    DMB_ASSIGN_OR_RETURN(mpi::Message msg, world.Recv());
    if (msg.tag == kEosTag) {
      ++eos_seen;
      continue;
    }
    DMB_CHECK(msg.tag == kDataTag);
    if (ckpt != nullptr) {
      // One decode feeds both sinks (no batch re-parse in the buffer).
      KVBatchReader reader(msg.payload);
      std::string_view key, value;
      while (reader.Next(&key, &value)) {
        DMB_RETURN_NOT_OK(ckpt->Add(key, value));
        DMB_RETURN_NOT_OK(buffer.Add(key, value));
      }
      DMB_RETURN_NOT_OK(reader.status());
    } else {
      DMB_RETURN_NOT_OK(buffer.AddBatch(msg.payload));
    }
  }
  if (ckpt != nullptr) {
    DMB_RETURN_NOT_OK(ckpt->Finish());
  }
  return ReduceBuffer(config, a_rank, &buffer, shared, a_fn);
}

}  // namespace

std::vector<KVPair> JobResult::Merged() const {
  std::vector<KVPair> all;
  for (const auto& part : a_outputs) {
    all.insert(all.end(), part.begin(), part.end());
  }
  return all;
}

DataMPIJob::DataMPIJob(JobConfig config) : config_(std::move(config)) {
  DMB_CHECK(config_.num_o_ranks >= 1);
  DMB_CHECK(config_.num_a_ranks >= 1);
  if (!config_.partitioner) {
    config_.partitioner = std::make_shared<HashPartitioner>();
  }
}

Result<JobResult> DataMPIJob::Run(OTaskFn o_fn, AGroupFn a_fn) {
  SharedState shared;
  {
    MutexLock lock(shared.output_mu);
    shared.a_outputs.resize(static_cast<size_t>(config_.num_a_ranks));
  }
  const int world_size = config_.num_o_ranks + config_.num_a_ranks;
  mpi::World world(world_size);
  const JobConfig& config = config_;
  Status run_status = world.Run([&](mpi::Comm& comm) -> Status {
    // Dichotomic: split the world into the bipartite O / A communicators.
    const bool is_o = comm.rank() < config.num_o_ranks;
    mpi::Comm group = comm.Split(is_o ? 0 : 1, comm.rank());
    Status st;
    if (is_o) {
      st = RunOTasks(config, comm, &shared, o_fn, config.partitioner.get());
    } else {
      st = RunATask(config, comm, comm.rank() - config.num_o_ranks, &shared,
                    a_fn);
    }
    if (!st.ok() && config.output_stream != nullptr) {
      // A failing task must unblock sibling A tasks that may be parked
      // on the output stream's backpressure window, or the job (and its
      // downstream consumer) would never terminate. The error travels
      // verbatim: siblings fail their next Push with it.
      config.output_stream->Cancel(st);
    }
    // Intra-group barrier: all tasks of a communicator finish together
    // (mirrors DataMPI's synchronized phase completion).
    if (group.valid()) group.Barrier();
    return st;
  });
  DMB_RETURN_NOT_OK(run_status);

  JobResult result;
  {
    // The ranks are joined (world.Run returned); the lock only keeps
    // the access discipline checkable.
    MutexLock lock(shared.output_mu);
    result.a_outputs = std::move(shared.a_outputs);
  }
  result.stats.o_records_emitted = shared.o_records.load();
  result.stats.shuffle_bytes = shared.shuffle_bytes.load();
  result.stats.shuffle_batches = shared.shuffle_batches.load();
  result.stats.a_records_received = shared.a_records.load();
  result.stats.a_spill_count = shared.a_spills.load();
  result.stats.a_spill_bytes_raw = shared.a_spill_bytes_raw.load();
  result.stats.a_spill_bytes_on_disk = shared.a_spill_bytes_on_disk.load();
  result.stats.a_blocks_read = shared.a_blocks_read.load();
  result.stats.output_records = shared.output_records.load();
  result.stats.parallel_shuffle_tasks = shared.parallel_tasks.load();
  result.stats.o_waves = shared.max_wave.load();
  return result;
}

Result<JobResult> DataMPIJob::RunFromCheckpoint(AGroupFn a_fn) {
  if (config_.checkpoint_dir.empty()) {
    return Status::FailedPrecondition("no checkpoint_dir configured");
  }
  SharedState shared;
  {
    MutexLock lock(shared.output_mu);
    shared.a_outputs.resize(static_cast<size_t>(config_.num_a_ranks));
  }
  const JobConfig& config = config_;
  mpi::World world(config_.num_a_ranks);
  Status run_status = world.Run([&](mpi::Comm& comm) -> Status {
    const int a_rank = comm.rank();
    // Open validates the container (magic, footer checksum); every block
    // read below is CRC-verified, so a damaged checkpoint surfaces as
    // Corruption instead of silently feeding the restarted A phase.
    DMB_ASSIGN_OR_RETURN(
        std::unique_ptr<io::StreamingRunReader> reader,
        io::StreamingRunReader::Open(CheckpointPath(config, a_rank)));
    KVBufferOptions options;
    options.memory_budget_bytes = config.a_memory_budget_bytes;
    options.sort_by_key = config.sort_by_key;
    options.spill_io = config.spill_io;
    options.parallel = config.parallel;
    SpillableKVBuffer buffer(options);
    std::string_view key, value;
    while (reader->Next(&key, &value)) {
      DMB_RETURN_NOT_OK(buffer.Add(key, value));
    }
    DMB_RETURN_NOT_OK(reader->status());
    return ReduceBuffer(config, a_rank, &buffer, &shared, a_fn);
  });
  DMB_RETURN_NOT_OK(run_status);

  JobResult result;
  {
    // The ranks are joined (world.Run returned); the lock only keeps
    // the access discipline checkable.
    MutexLock lock(shared.output_mu);
    result.a_outputs = std::move(shared.a_outputs);
  }
  result.stats.a_records_received = shared.a_records.load();
  result.stats.a_spill_count = shared.a_spills.load();
  result.stats.a_spill_bytes_raw = shared.a_spill_bytes_raw.load();
  result.stats.a_spill_bytes_on_disk = shared.a_spill_bytes_on_disk.load();
  result.stats.a_blocks_read = shared.a_blocks_read.load();
  result.stats.output_records = shared.output_records.load();
  result.stats.parallel_shuffle_tasks = shared.parallel_tasks.load();
  return result;
}

}  // namespace dmb::datampi
