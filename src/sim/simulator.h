// Discrete-event simulation kernel: a virtual clock and an event queue.
//
// The cluster model (src/cluster, src/dfs, src/simfw) runs on top of this
// kernel using C++20 coroutine processes (see sim/proc.h) and fluid
// fair-share resources (see sim/fluid.h).

#ifndef DATAMPI_BENCH_SIM_SIMULATOR_H_
#define DATAMPI_BENCH_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace dmb::sim {

/// \brief The simulation kernel: virtual time plus a pending-event queue.
///
/// Events scheduled for the same timestamp fire in FIFO order (a strictly
/// increasing sequence number breaks ties), which makes runs deterministic.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// \brief Current virtual time in seconds.
  double Now() const { return now_; }

  /// \brief Schedules `fn` to run at Now() + delay (delay >= 0).
  /// Returns an event id usable with Cancel().
  uint64_t Schedule(double delay, std::function<void()> fn);

  /// \brief Cancels a scheduled event; no-op if it already fired.
  void Cancel(uint64_t event_id);

  /// \brief Runs until the event queue is empty. Returns final time.
  double Run();

  /// \brief Runs until the queue is empty or virtual time would exceed `t`;
  /// the clock is then clamped to min(t, next event time).
  double RunUntil(double t);

  /// \brief Number of events dispatched so far (for tests/statistics).
  uint64_t events_dispatched() const { return events_dispatched_; }

 private:
  struct Event {
    double time;
    uint64_t seq;
    uint64_t id;
  };
  struct EventCmp {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;  // min-heap on time
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  uint64_t events_dispatched_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventCmp> queue_;
  std::unordered_map<uint64_t, std::function<void()>> callbacks_;
};

}  // namespace dmb::sim

#endif  // DATAMPI_BENCH_SIM_SIMULATOR_H_
