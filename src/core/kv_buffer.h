// SpillableKVBuffer: the A-task side intermediate store of DataMPI.
//
// Received key-value pairs are buffered in memory; when the memory budget
// is exceeded the buffer sorts the resident records and spills them as a
// sorted run file. Finish() merges the in-memory records with all spilled
// runs into a single sorted stream grouped by key — exactly the external
// merge sort a Hadoop reduce side performs, but with DataMPI's bias
// toward keeping data memory-resident ("data-centric" buffering).
//
// Since the shared-shuffle refactor this is a thin facade over the
// src/shuffle layer: records live as KVSlices over a KVArena inside a
// single-partition PartitionedCollector, and Finish() is RunMerger's
// k-way merge — the same code path under the MapReduce and rddlite
// engines, which is what makes the paper's like-for-like comparison a
// property of shared code.

#ifndef DATAMPI_BENCH_CORE_KV_BUFFER_H_
#define DATAMPI_BENCH_CORE_KV_BUFFER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/temp_dir.h"
#include "shuffle/collector.h"
#include "shuffle/run_merger.h"

namespace dmb::datampi {

/// \brief Iterates (key, values) groups in sorted key order (shared
/// shuffle-layer type, re-exported for the DataMPI A side).
using KVGroupIterator = shuffle::KVGroupIterator;

/// \brief Buffer options.
struct KVBufferOptions {
  /// Approximate in-memory bytes before a spill is triggered.
  int64_t memory_budget_bytes = 64 << 20;
  /// When false, Finish() preserves arrival order and yields singleton
  /// groups (for order-insensitive A tasks like Grep counting).
  bool sort_by_key = true;
  /// Directory for run files; when null a private TempDir is created.
  const TempDir* spill_dir = nullptr;
  /// Run-file block size and codec (src/io spill format).
  io::BlockFileOptions spill_io;
  /// Intra-task parallelism context (borrowed, may be null): arms
  /// parallel spill sorts, overlapped spill-block encoding and
  /// merge-time block prefetch in the underlying collector. Bytes and
  /// group order are identical with or without it.
  ParallelContext* parallel = nullptr;
};

/// \brief The spillable buffer.
class SpillableKVBuffer {
 public:
  explicit SpillableKVBuffer(KVBufferOptions options = KVBufferOptions{});
  ~SpillableKVBuffer();

  SpillableKVBuffer(const SpillableKVBuffer&) = delete;
  SpillableKVBuffer& operator=(const SpillableKVBuffer&) = delete;

  /// \brief Adds one record (may trigger a spill).
  Status Add(std::string_view key, std::string_view value);

  /// \brief Adds every record of an encoded KVBatch.
  Status AddBatch(std::string_view batch);

  /// \brief Seals the buffer and returns the grouped, merged iterator.
  /// The buffer must not be Add()ed to afterwards.
  Result<std::unique_ptr<KVGroupIterator>> Finish();

  int64_t records_added() const { return collector_.records_added(); }
  int64_t bytes_added() const { return collector_.bytes_added(); }
  int spill_count() const { return collector_.spill_count(); }
  /// Run-file bytes on disk (post block compression).
  int64_t spilled_bytes() const { return collector_.spilled_bytes(); }
  /// Encoded run bytes before block compression.
  int64_t spilled_raw_bytes() const {
    return collector_.spilled_raw_bytes();
  }
  /// Intra-task pool work units the collector fanned out (0 when the
  /// buffer runs serial).
  int64_t parallel_tasks() const { return collector_.parallel_tasks(); }

 private:
  static shuffle::CollectorOptions ToCollectorOptions(
      const KVBufferOptions& options);

  shuffle::PartitionedCollector collector_;
};

}  // namespace dmb::datampi

#endif  // DATAMPI_BENCH_CORE_KV_BUFFER_H_
