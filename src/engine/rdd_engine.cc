#include "engine/rdd_engine.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <utility>

#include "common/thread_pool.h"
#include "rddlite/rdd.h"

namespace dmb::engine {

namespace {

using StrPair = std::pair<std::string, std::string>;

std::pair<size_t, size_t> SplitRange(size_t n, int part, int parts) {
  return {n * static_cast<size_t>(part) / static_cast<size_t>(parts),
          n * static_cast<size_t>(part + 1) / static_cast<size_t>(parts)};
}

bool PairLess(const StrPair& a, const StrPair& b) {
  if (a.first != b.first) return a.first < b.first;
  return a.second < b.second;
}

/// Collects map emissions of one partition.
class CollectingMapContext final : public MapContext {
 public:
  explicit CollectingMapContext(int task_id) : task_id_(task_id) {}

  Status Emit(std::string_view key, std::string_view value) override {
    out_.emplace_back(std::string(key), std::string(value));
    return Status::OK();
  }
  int task_id() const override { return task_id_; }

  std::vector<StrPair> Take() { return std::move(out_); }

 private:
  int task_id_;
  std::vector<StrPair> out_;
};

/// Narrow stage: applies the user map function (plus the map-side
/// combiner, as Spark's combineByKey does) to this partition's slice of
/// the input.
class MapStageRDD final : public rddlite::RDD<StrPair> {
 public:
  MapStageRDD(rddlite::RddContext* ctx,
              std::shared_ptr<const std::vector<KVPair>> input, int parts,
              MapFn map_fn, CombinerFn combiner,
              std::atomic<int64_t>* map_records)
      : RDD<StrPair>(ctx, parts),
        input_(std::move(input)),
        map_fn_(std::move(map_fn)),
        combiner_(std::move(combiner)),
        map_records_(map_records) {}

 protected:
  Result<std::vector<StrPair>> DoCompute(int p) override {
    const auto [begin, end] =
        SplitRange(input_->size(), p, this->num_partitions());
    CollectingMapContext ctx(p);
    for (size_t i = begin; i < end; ++i) {
      DMB_RETURN_NOT_OK(
          map_fn_((*input_)[i].key, (*input_)[i].value, &ctx));
    }
    std::vector<StrPair> out = ctx.Take();
    map_records_->fetch_add(static_cast<int64_t>(out.size()),
                            std::memory_order_relaxed);
    if (combiner_ && !out.empty()) {
      std::sort(out.begin(), out.end(), PairLess);
      std::vector<StrPair> combined;
      std::vector<std::string> values;
      size_t i = 0;
      while (i < out.size()) {
        const std::string& key = out[i].first;
        values.clear();
        while (i < out.size() && out[i].first == key) {
          values.push_back(std::move(out[i].second));
          ++i;
        }
        combined.emplace_back(key, combiner_(key, values));
      }
      out = std::move(combined);
    }
    return out;
  }

 private:
  std::shared_ptr<const std::vector<KVPair>> input_;
  MapFn map_fn_;
  CombinerFn combiner_;
  std::atomic<int64_t>* map_records_;
};

/// Wide stage: materializes the parent once, routes every pair through
/// the spec partitioner, and charges the materialization against the
/// executor memory budget (shuffle data is memory-resident in Spark 0.8).
class ShuffleStageRDD final : public rddlite::RDD<StrPair> {
 public:
  ShuffleStageRDD(rddlite::RDD<StrPair>::Ptr parent, int parts,
                  std::shared_ptr<const datampi::Partitioner> partitioner,
                  bool sort_by_key, std::atomic<int64_t>* shuffle_bytes)
      : RDD<StrPair>(parent->context(), parts),
        parent_(std::move(parent)),
        partitioner_(std::move(partitioner)),
        sort_by_key_(sort_by_key),
        shuffle_bytes_(shuffle_bytes) {}

  ~ShuffleStageRDD() override {
    if (store_bytes_ > 0) this->ctx_->memory()->Release(store_bytes_);
  }

 protected:
  Result<std::vector<StrPair>> DoCompute(int p) override {
    DMB_RETURN_NOT_OK(EnsureMaterialized());
    return store_[static_cast<size_t>(p)];
  }

 private:
  Status EnsureMaterialized() {
    std::lock_guard<std::mutex> lock(mu_);
    if (materialized_) return store_status_;
    materialized_ = true;
    store_.resize(static_cast<size_t>(this->num_partitions()));
    for (int pp = 0; pp < parent_->num_partitions(); ++pp) {
      auto in = parent_->ComputePartition(pp);
      if (!in.ok()) {
        store_status_ = in.status();
        return store_status_;
      }
      const int64_t bytes = rddlite::ApproxSizeAll(*in);
      Status st = this->ctx_->memory()->Reserve(bytes);
      if (!st.ok()) {
        store_status_ = st;
        return store_status_;
      }
      store_bytes_ += bytes;
      shuffle_bytes_->fetch_add(bytes, std::memory_order_relaxed);
      for (auto& kv : *in) {
        const int bucket =
            partitioner_->Partition(kv.first, this->num_partitions());
        store_[static_cast<size_t>(bucket)].push_back(std::move(kv));
      }
    }
    if (sort_by_key_) {
      for (auto& bucket : store_) {
        std::stable_sort(bucket.begin(), bucket.end(), PairLess);
      }
    }
    return Status::OK();
  }

  rddlite::RDD<StrPair>::Ptr parent_;
  std::shared_ptr<const datampi::Partitioner> partitioner_;
  bool sort_by_key_;
  std::atomic<int64_t>* shuffle_bytes_;
  std::mutex mu_;
  bool materialized_ = false;
  Status store_status_;
  std::vector<std::vector<StrPair>> store_;
  int64_t store_bytes_ = 0;
};

class CollectingReduceEmitter final : public ReduceEmitter {
 public:
  void Emit(std::string_view key, std::string_view value) override {
    out_.push_back(KVPair{std::string(key), std::string(value)});
  }
  std::vector<KVPair> Take() { return std::move(out_); }

 private:
  std::vector<KVPair> out_;
};

}  // namespace

Result<JobOutput> RddEngine::Run(const JobSpec& spec) {
  DMB_RETURN_NOT_OK(ValidateSpec(spec));
  rddlite::RddContext::Options options;
  options.slots = spec.parallelism;
  if (spec.memory_budget_bytes > 0) {
    options.memory_budget_bytes = spec.memory_budget_bytes;
  }
  rddlite::RddContext ctx(options);

  std::shared_ptr<const datampi::Partitioner> partitioner = spec.partitioner;
  if (!partitioner) {
    partitioner = std::make_shared<datampi::HashPartitioner>();
  }

  std::atomic<int64_t> map_records{0};
  std::atomic<int64_t> shuffle_bytes{0};
  auto mapped = std::make_shared<MapStageRDD>(
      &ctx, spec.input, spec.parallelism, spec.map_fn, spec.combiner,
      &map_records);
  auto shuffled = std::make_shared<ShuffleStageRDD>(
      mapped, spec.parallelism, partitioner, spec.sort_by_key,
      &shuffle_bytes);

  JobOutput output;
  output.partitions.resize(static_cast<size_t>(spec.parallelism));
  std::atomic<int64_t> reduce_in{0}, reduce_out{0};
  std::vector<Status> statuses(static_cast<size_t>(spec.parallelism));
  {
    ThreadPool pool(spec.parallelism);
    for (int p = 0; p < spec.parallelism; ++p) {
      pool.Submit([&, p] {
        auto part = shuffled->ComputePartition(p);
        if (!part.ok()) {
          statuses[static_cast<size_t>(p)] = part.status();
          return;
        }
        reduce_in.fetch_add(static_cast<int64_t>(part->size()),
                            std::memory_order_relaxed);
        CollectingReduceEmitter emitter;
        Status st;
        std::vector<std::string> values;
        size_t i = 0;
        while (i < part->size() && st.ok()) {
          const std::string key = std::move((*part)[i].first);
          values.clear();
          if (spec.sort_by_key) {
            values.push_back(std::move((*part)[i].second));
            ++i;
            while (i < part->size() && (*part)[i].first == key) {
              values.push_back(std::move((*part)[i].second));
              ++i;
            }
          } else {
            // Arrival-order singleton groups, as DataMPI's unsorted mode.
            values.push_back(std::move((*part)[i].second));
            ++i;
          }
          st = spec.reduce_fn(key, values, &emitter);
        }
        if (!st.ok()) {
          statuses[static_cast<size_t>(p)] = st;
          return;
        }
        auto out = emitter.Take();
        reduce_out.fetch_add(static_cast<int64_t>(out.size()),
                             std::memory_order_relaxed);
        output.partitions[static_cast<size_t>(p)] = std::move(out);
      });
    }
    pool.Wait();
  }
  for (const auto& st : statuses) {
    DMB_RETURN_NOT_OK(st);
  }

  output.stats.map_output_records = map_records.load();
  output.stats.shuffle_bytes = shuffle_bytes.load();
  output.stats.spill_count = 0;  // rddlite has no spill path (it OOMs)
  output.stats.reduce_input_records = reduce_in.load();
  output.stats.output_records = reduce_out.load();
  return output;
}

}  // namespace dmb::engine
