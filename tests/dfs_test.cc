// Tests for the HDFS model: namenode placement invariants, read/write
// data-path timing sanity, DFSIO behaviour, and the BlockStore payload
// path (checksummed block files under the logical filesystem).

#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/temp_dir.h"
#include "dfs/block_store.h"
#include "dfs/dfsio.h"
#include "dfs/hdfs_model.h"
#include "dfs/namenode.h"

namespace dmb::dfs {
namespace {

DfsConfig SmallConfig() {
  DfsConfig config;
  config.block_size_bytes = 64 << 20;
  config.replication = 3;
  config.num_nodes = 8;
  return config;
}

TEST(NamenodeTest, SplitsFileIntoBlocks) {
  Namenode nn(SmallConfig());
  auto file = nn.CreateFile("/f", (200 << 20), 0);
  ASSERT_TRUE(file.ok());
  ASSERT_EQ((*file)->blocks.size(), 4u);  // 64+64+64+8
  EXPECT_EQ((*file)->blocks[0].size_bytes, 64 << 20);
  EXPECT_EQ((*file)->blocks[3].size_bytes, 8 << 20);
}

TEST(NamenodeTest, ReplicasAreDistinctAndIncludeWriter) {
  Namenode nn(SmallConfig());
  auto file = nn.CreateFile("/f", (1 << 30), 3);
  ASSERT_TRUE(file.ok());
  for (const auto& b : (*file)->blocks) {
    ASSERT_EQ(b.replicas.size(), 3u);
    EXPECT_EQ(b.replicas[0], 3) << "first replica on the writer";
    std::set<int> distinct(b.replicas.begin(), b.replicas.end());
    EXPECT_EQ(distinct.size(), 3u);
    for (int r : b.replicas) {
      EXPECT_GE(r, 0);
      EXPECT_LT(r, 8);
    }
  }
}

TEST(NamenodeTest, ReplicationClampedToClusterSize) {
  DfsConfig config = SmallConfig();
  config.num_nodes = 2;
  Namenode nn(config);
  auto file = nn.CreateFile("/f", (64 << 20), 0);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->blocks[0].replicas.size(), 2u);
}

TEST(NamenodeTest, DuplicateCreateFails) {
  Namenode nn(SmallConfig());
  ASSERT_TRUE(nn.CreateFile("/f", 100, 0).ok());
  auto dup = nn.CreateFile("/f", 100, 0);
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(NamenodeTest, DeleteReleasesAccounting) {
  Namenode nn(SmallConfig());
  ASSERT_TRUE(nn.CreateFile("/f", (128 << 20), 0).ok());
  EXPECT_EQ(nn.total_bytes(), 128 << 20);
  EXPECT_EQ(nn.physical_bytes(), 3LL * (128 << 20));
  ASSERT_TRUE(nn.DeleteFile("/f").ok());
  EXPECT_EQ(nn.total_bytes(), 0);
  EXPECT_EQ(nn.physical_bytes(), 0);
  EXPECT_FALSE(nn.DeleteFile("/f").ok());
}

TEST(NamenodeTest, ListFilesByPrefix) {
  Namenode nn(SmallConfig());
  ASSERT_TRUE(nn.CreateFile("/a/1", 10, 0).ok());
  ASSERT_TRUE(nn.CreateFile("/a/2", 10, 0).ok());
  ASSERT_TRUE(nn.CreateFile("/b/1", 10, 0).ok());
  EXPECT_EQ(nn.ListFiles("/a/").size(), 2u);
  EXPECT_EQ(nn.ListFiles("/").size(), 3u);
  EXPECT_TRUE(nn.ListFiles("/c/").empty());
}

TEST(NamenodeTest, PlacementIsReasonablyBalanced) {
  Namenode nn(SmallConfig());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        nn.CreateFile("/f" + std::to_string(i), (64 << 20), i % 8).ok());
  }
  const auto usage = nn.PerNodeUsage();
  const int64_t total = 3LL * 64 * (64 << 20);
  for (int64_t u : usage) {
    EXPECT_GT(u, total / 8 / 3);
    EXPECT_LT(u, total / 8 * 3);
  }
}

TEST(NamenodeTest, LocalityFractionMatchesPlacement) {
  Namenode nn(SmallConfig());
  auto file = nn.CreateFile("/f", (512 << 20), 2);
  ASSERT_TRUE(file.ok());
  // Writer holds every block: locality 1.0 there.
  EXPECT_DOUBLE_EQ(nn.LocalityFraction(**file, 2), 1.0);
}

TEST(NamenodeTest, ChooseReplicaPrefersLocal) {
  Namenode nn(SmallConfig());
  auto file = nn.CreateFile("/f", (64 << 20), 5);
  ASSERT_TRUE(file.ok());
  Rng rng(1);
  EXPECT_EQ(nn.ChooseReplicaForRead((*file)->blocks[0], 5, &rng), 5);
}

// ---- Data-path timing ----

struct Testbed {
  sim::Simulator sim;
  sim::FluidSystem fluid{&sim};
  cluster::SimCluster cluster;
  Namenode namenode;
  HdfsModel hdfs;
  Testbed()
      : cluster(&sim, &fluid, cluster::ClusterSpec{}),
        namenode(DfsConfig{}),
        hdfs(&cluster, &namenode) {}
};

sim::Proc MarkDone(HdfsModel* hdfs, sim::Proc inner, double* done,
                   sim::Simulator* sim) {
  co_await inner;
  *done = sim->Now();
  (void)hdfs;
}

TEST(HdfsModelTest, LocalWriteBoundedByDiskAndNet) {
  Testbed tb;
  double done = -1;
  tb.cluster.simulator();
  sim::Spawner spawner(&tb.sim);
  spawner.Spawn(MarkDone(&tb.hdfs,
                         tb.hdfs.WriteFile(0, "/w", int64_t{1} << 30), &done,
                         &tb.sim));
  tb.sim.Run();
  // 1 GiB with 3 replicas: replica disks write 1 GiB each (parallel on
  // different nodes), two 1 GiB network hops. Lower bound: max(disk
  // write of one block chain...) -> must exceed 1024/112 ~ 9.1 s and be
  // well under a serial 3x bound.
  EXPECT_GT(done, 9.0);
  EXPECT_LT(done, 40.0);
}

TEST(HdfsModelTest, LocalReadFasterThanRemoteRead) {
  Testbed tb;
  ASSERT_TRUE(tb.namenode.CreateFile("/data", 512 << 20, 0).ok());
  double local_done = -1;
  {
    sim::Spawner spawner(&tb.sim);
    spawner.Spawn(MarkDone(&tb.hdfs, tb.hdfs.ReadBlockFrom(0, 0, 512 << 20),
                           &local_done, &tb.sim));
    tb.sim.Run();
  }
  // Remote read of the same volume in a fresh testbed.
  Testbed tb2;
  double remote_done = -1;
  {
    sim::Spawner spawner(&tb2.sim);
    spawner.Spawn(MarkDone(&tb2.hdfs, tb2.hdfs.ReadBlockFrom(1, 0, 512 << 20),
                           &remote_done, &tb2.sim));
    tb2.sim.Run();
  }
  EXPECT_GT(local_done, 0);
  // Remote crosses the 117 MB/s NIC vs 135 MB/s local disk.
  EXPECT_GT(remote_done, local_done);
}

TEST(HdfsModelTest, ConcurrentWritersContend) {
  // One writer vs four concurrent writers of the same total volume:
  // contention must not be free.
  auto run = [](int writers) {
    Testbed tb;
    sim::Spawner spawner(&tb.sim);
    std::vector<double> done(static_cast<size_t>(writers), -1);
    for (int w = 0; w < writers; ++w) {
      spawner.Spawn(MarkDone(
          &tb.hdfs,
          tb.hdfs.WriteFile(0, "/w" + std::to_string(w), 256 << 20),
          &done[static_cast<size_t>(w)], &tb.sim));
    }
    tb.sim.Run();
    return tb.sim.Now();
  };
  const double one = run(1);
  const double four = run(4);
  EXPECT_GT(four, one * 1.5) << "four writers share node-0 resources";
}

// ---- DFSIO (Figure 2a mechanism) ----

TEST(DfsioTest, ThroughputPeaksAtTunedBlockSize) {
  // The paper's Figure 2(a): 256 MB wins over 64 MB (per-block overhead)
  // and over 512 MB (finalize cost + quantization).
  auto throughput = [](int64_t block_mb) {
    DfsioOptions options;
    options.total_bytes = int64_t{5} << 30;
    options.dfs.block_size_bytes = block_mb << 20;
    return RunDfsio(options).throughput_mbps;
  };
  const double t64 = throughput(64);
  const double t256 = throughput(256);
  EXPECT_GT(t256, t64) << "bigger blocks amortize per-block overhead";
}

TEST(DfsioTest, AggregateThroughputScalesWithFiles) {
  DfsioOptions one;
  one.total_bytes = int64_t{2} << 30;
  one.num_files = 1;
  DfsioOptions eight = one;
  eight.num_files = 8;
  EXPECT_GT(RunDfsio(eight).aggregate_mbps, RunDfsio(one).aggregate_mbps);
}

TEST(DfsioTest, ReadModeUsesReadPath) {
  DfsioOptions options;
  options.total_bytes = int64_t{2} << 30;
  options.read_mode = true;
  const DfsioResult result = RunDfsio(options);
  EXPECT_GT(result.throughput_mbps, 0.0);
  // Reads skip the 3x replication pipeline: faster than writes.
  DfsioOptions wopt = options;
  wopt.read_mode = false;
  EXPECT_GT(result.throughput_mbps, RunDfsio(wopt).throughput_mbps);
}

TEST(BlockStoreTest, PutGetRoundTripWithCompression) {
  TempDir dir("dfs-store");
  io::BlockFileOptions options;
  options.block_bytes = 4096;
  options.codec = io::Codec::kLz;
  BlockStore store(dir.path().string(), options);

  // Compressible payload spanning several blocks.
  std::string payload;
  for (int i = 0; i < 2000; ++i) {
    payload += "line " + std::to_string(i % 37) + " of the corpus\n";
  }
  ASSERT_TRUE(store.Put("/data/part-00000", payload).ok());
  EXPECT_TRUE(store.Exists("/data/part-00000"));
  EXPECT_EQ(store.raw_bytes(), static_cast<int64_t>(payload.size()));
  EXPECT_LT(store.stored_bytes(), store.raw_bytes())
      << "LZ blocks should compress the repetitive payload";

  auto got = store.Get("/data/part-00000");
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, payload);

  // Overwrite shrinks the accounting to the new payload.
  ASSERT_TRUE(store.Put("/data/part-00000", "tiny").ok());
  EXPECT_EQ(store.raw_bytes(), 4);
  EXPECT_EQ(store.file_count(), 1);

  EXPECT_TRUE(store.Get("/missing").status().IsNotFound());
  ASSERT_TRUE(store.Delete("/data/part-00000").ok());
  EXPECT_EQ(store.file_count(), 0);
  EXPECT_EQ(store.raw_bytes(), 0);
  EXPECT_TRUE(store.Delete("/data/part-00000").IsNotFound());
}

TEST(BlockStoreTest, EmptyPayloadAndBinaryPayloadRoundTrip) {
  TempDir dir("dfs-store");
  BlockStore store(dir.path().string());
  ASSERT_TRUE(store.Put("/empty", "").ok());
  auto empty = store.Get("/empty");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, "");

  Rng rng(3);
  std::string binary;
  for (int i = 0; i < 100000; ++i) {
    binary.push_back(static_cast<char>(rng.Uniform(256)));
  }
  ASSERT_TRUE(store.Put("/bin", binary).ok());
  auto got = store.Get("/bin");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, binary);
}

}  // namespace
}  // namespace dmb::dfs
