// SpillableKVBuffer: the A-task side intermediate store of DataMPI.
//
// Received key-value pairs are buffered in memory; when the memory budget
// is exceeded the buffer sorts the resident records and spills them as a
// sorted run file. Finish() merges the in-memory records with all spilled
// runs into a single sorted stream grouped by key — exactly the external
// merge sort a Hadoop reduce side performs, but with DataMPI's bias
// toward keeping data memory-resident ("data-centric" buffering).

#ifndef DATAMPI_BENCH_CORE_KV_BUFFER_H_
#define DATAMPI_BENCH_CORE_KV_BUFFER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/temp_dir.h"
#include "core/kv.h"

namespace dmb::datampi {

/// \brief Iterates (key, values) groups in sorted key order.
class KVGroupIterator {
 public:
  virtual ~KVGroupIterator() = default;
  /// \brief Advances to the next group; false at end-of-stream.
  virtual bool NextGroup(std::string* key,
                         std::vector<std::string>* values) = 0;
  virtual const Status& status() const = 0;
};

/// \brief Buffer options.
struct KVBufferOptions {
  /// Approximate in-memory bytes before a spill is triggered.
  int64_t memory_budget_bytes = 64 << 20;
  /// When false, Finish() preserves arrival order and yields singleton
  /// groups (for order-insensitive A tasks like Grep counting).
  bool sort_by_key = true;
  /// Directory for run files; when null a private TempDir is created.
  const TempDir* spill_dir = nullptr;
};

/// \brief The spillable buffer.
class SpillableKVBuffer {
 public:
  explicit SpillableKVBuffer(KVBufferOptions options = KVBufferOptions{});
  ~SpillableKVBuffer();

  SpillableKVBuffer(const SpillableKVBuffer&) = delete;
  SpillableKVBuffer& operator=(const SpillableKVBuffer&) = delete;

  /// \brief Adds one record (may trigger a spill).
  Status Add(std::string_view key, std::string_view value);

  /// \brief Adds every record of an encoded KVBatch.
  Status AddBatch(std::string_view batch);

  /// \brief Seals the buffer and returns the grouped, merged iterator.
  /// The buffer must not be Add()ed to afterwards.
  Result<std::unique_ptr<KVGroupIterator>> Finish();

  int64_t records_added() const { return records_added_; }
  int64_t bytes_added() const { return bytes_added_; }
  int spill_count() const { return static_cast<int>(spill_files_.size()); }
  int64_t spilled_bytes() const { return spilled_bytes_; }

 private:
  Status SpillNow();

  KVBufferOptions options_;
  std::unique_ptr<TempDir> owned_dir_;
  const TempDir* dir_ = nullptr;

  std::vector<KVPair> memory_;
  int64_t memory_bytes_ = 0;
  int64_t records_added_ = 0;
  int64_t bytes_added_ = 0;
  int64_t spilled_bytes_ = 0;
  std::vector<std::string> spill_files_;
  bool finished_ = false;
};

}  // namespace dmb::datampi

#endif  // DATAMPI_BENCH_CORE_KV_BUFFER_H_
