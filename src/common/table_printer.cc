#include "common/table_printer.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace dmb {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace dmb
