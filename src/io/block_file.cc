#include "io/block_file.h"

#include <algorithm>
#include <limits>
#include <thread>
#include <utility>

#include "common/byte_buffer.h"
#include "common/parallel.h"
#include "io/crc32.h"

namespace dmb::io {

namespace {

Status WriteAll(std::ofstream* out, const void* data, size_t n,
                const std::string& path) {
  out->write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!out->good()) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Status ReadAll(std::ifstream* in, int64_t offset, char* data, size_t n,
               const std::string& path) {
  in->clear();
  in->seekg(offset);
  in->read(data, static_cast<std::streamsize>(n));
  if (in->gcount() != static_cast<std::streamsize>(n)) {
    return Status::Corruption("short read at offset " +
                              std::to_string(offset) + ": " + path);
  }
  return Status::OK();
}

}  // namespace

// ---- BlockWriter -----------------------------------------------------

BlockWriter::BlockWriter(const std::string& path, BlockFileOptions options)
    : path_(path), options_(options) {
  // Block lengths are stored as u32 in the header; clamp the target well
  // below that so a misconfigured block size can't write headers whose
  // lengths truncate (1 GiB blocks already defeat the streaming point).
  options_.block_bytes =
      std::clamp<int64_t>(options_.block_bytes, 1, int64_t{1} << 30);
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_.is_open()) {
    status_ = Status::IOError("cannot create block file: " + path_);
  }
}

BlockWriter::~BlockWriter() { AbandonJobs(); }

bool BlockWriter::overlapped() const {
  return options_.parallel != nullptr && options_.parallel->enabled();
}

std::unique_ptr<Compressor> BlockWriter::TakeCompressor() {
  MutexLock lock(compressors_mu_);
  if (free_compressors_.empty()) return std::make_unique<Compressor>();
  std::unique_ptr<Compressor> compressor =
      std::move(free_compressors_.back());
  free_compressors_.pop_back();
  return compressor;
}

void BlockWriter::ReturnCompressor(std::unique_ptr<Compressor> compressor) {
  MutexLock lock(compressors_mu_);
  free_compressors_.push_back(std::move(compressor));
}

Status BlockWriter::AppendRecord(std::string_view record) {
  DMB_RETURN_NOT_OK(status_);
  if (finished_) {
    return Status::FailedPrecondition("AppendRecord after Finish");
  }
  if (record.empty()) {
    // The block payload has no per-record framing (records carry their
    // own, e.g. EncodeKV), so a zero-length record is unrepresentable:
    // it would inflate record_count past what the payload encodes.
    return Status::InvalidArgument("zero-length records are not supported");
  }
  if (record.size() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("record larger than 4 GiB");
  }
  // A block never splits a record: cut before appending would overflow
  // the target, so raw_len <= max(block_bytes, this record's size).
  if (!pending_.empty() &&
      static_cast<int64_t>(pending_.size() + record.size()) >
          options_.block_bytes) {
    DMB_RETURN_NOT_OK(FlushBlock());
  }
  pending_.append(record);
  ++pending_records_;
  ++stats_.records;
  stats_.raw_bytes += static_cast<int64_t>(record.size());
  if (static_cast<int64_t>(pending_.size()) >= options_.block_bytes) {
    DMB_RETURN_NOT_OK(FlushBlock());
  }
  return Status::OK();
}

Status BlockWriter::FlushBlock() {
  if (pending_.empty()) return Status::OK();
  if (overlapped()) return SubmitBlockJob();
  Codec codec = options_.codec;
  if (codec != Codec::kNone) {
    compressor_.Compress(codec, pending_, &scratch_);
    // Incompressible block: store raw, marked kNone in its header.
    if (scratch_.size() >= pending_.size()) codec = Codec::kNone;
  }
  const std::string& stored = codec == Codec::kNone ? pending_ : scratch_;

  ByteBuffer header;
  header.AppendU32(static_cast<uint32_t>(pending_records_));
  header.AppendU32(static_cast<uint32_t>(pending_.size()));
  header.AppendU32(static_cast<uint32_t>(stored.size()));
  header.AppendByte(static_cast<uint8_t>(codec));
  header.AppendU32(Crc32(stored));
  Status st = WriteAll(&out_, header.data(), header.size(), path_);
  if (st.ok()) st = WriteAll(&out_, stored.data(), stored.size(), path_);
  if (!st.ok()) {
    status_ = st;
    return status_;
  }

  IndexEntry entry;
  entry.offset = offset_;
  entry.stored_len = static_cast<int64_t>(stored.size());
  entry.raw_len = static_cast<int64_t>(pending_.size());
  entry.record_count = pending_records_;
  entry.codec = codec;
  index_.push_back(entry);
  offset_ += kBlockHeaderBytes + entry.stored_len;
  ++stats_.blocks;
  pending_.clear();
  pending_records_ = 0;
  return Status::OK();
}

// ---- Overlapped pipeline ---------------------------------------------
//
// The calling thread seals pending_ into sequence-ordered BlockJobs and
// keeps appending; pool workers compress + checksum each job; the
// calling thread writes completed jobs strictly in submission order.
// Same blocks, same per-block codec decision, same order — the file
// bytes are identical to the serial path for any thread count.
//
// Budget: each in-flight job holds one shared inflight-block slot. A
// writer at its cap (or finding the budget empty) retires its own front
// job first — it never parks on the shared budget while holding
// completed jobs only it can write, which is what makes N concurrent
// spill writers on one budget deadlock-free.

Status BlockWriter::SubmitBlockJob() {
  ParallelContext* ctx = options_.parallel;
  const size_t cap = static_cast<size_t>(options_.max_inflight_blocks > 0
                                             ? options_.max_inflight_blocks
                                             : ctx->max_inflight_blocks());
  DMB_RETURN_NOT_OK(DrainJobs(/*all=*/false));
  while (jobs_.size() >= cap || !ctx->TryAcquireBlockSlot()) {
    if (!jobs_.empty()) {
      WaitJobDone(jobs_.front().get());
      DMB_RETURN_NOT_OK(DrainJobs(/*all=*/false));
    } else {
      // Holding no jobs means holding no slots: blocking on the shared
      // budget (helping the pool meanwhile) cannot deadlock.
      ctx->AcquireBlockSlot();
      break;
    }
  }

  auto job = std::make_unique<BlockJob>();
  job->raw = std::move(pending_);
  job->records = pending_records_;
  pending_.clear();
  pending_records_ = 0;
  BlockJob* j = job.get();
  jobs_.push_back(std::move(job));
  const Codec want = options_.codec;
  auto compress = [this, j, want] {
    Codec codec = want;
    if (codec != Codec::kNone) {
      std::unique_ptr<Compressor> compressor = TakeCompressor();
      compressor->Compress(codec, j->raw, &j->compressed);
      // Incompressible block: store raw, marked kNone in its header.
      if (j->compressed.size() >= j->raw.size()) codec = Codec::kNone;
      ReturnCompressor(std::move(compressor));
    }
    j->codec = codec;
    j->crc = Crc32(j->stored());
    j->done.store(true, std::memory_order_release);
  };
  j->on_pool = ctx->pool()->Submit(compress);
  if (j->on_pool) {
    ctx->CountSpawnedTask();
  } else {
    compress();  // pool shutting down: seal the block inline
  }
  return Status::OK();
}

void BlockWriter::WaitJobDone(BlockJob* job) {
  ParallelContext* ctx = options_.parallel;
  while (!job->done.load(std::memory_order_acquire)) {
    // A false RunUntil (pool shut down, nothing queued or running)
    // with done still unset can only be a transient race with the
    // closure's final store — poll until it lands.
    if (!ctx->pool()->RunUntil([job] {
          return job->done.load(std::memory_order_acquire);
        })) {
      std::this_thread::yield();
    }
  }
}

Status BlockWriter::DrainJobs(bool all) {
  ParallelContext* ctx = options_.parallel;
  while (!jobs_.empty()) {
    BlockJob* front = jobs_.front().get();
    if (!front->done.load(std::memory_order_acquire)) {
      if (!all) return Status::OK();
      WaitJobDone(front);
    }
    std::unique_ptr<BlockJob> job = std::move(jobs_.front());
    jobs_.pop_front();
    const Status st = WriteJob(job.get());
    ctx->ReleaseBlockSlot();
    if (!st.ok()) {
      status_ = st;
      AbandonJobs();
      return status_;
    }
  }
  return Status::OK();
}

Status BlockWriter::WriteJob(BlockJob* job) {
  const std::string& stored = job->stored();
  ByteBuffer header;
  header.AppendU32(static_cast<uint32_t>(job->records));
  header.AppendU32(static_cast<uint32_t>(job->raw.size()));
  header.AppendU32(static_cast<uint32_t>(stored.size()));
  header.AppendByte(static_cast<uint8_t>(job->codec));
  header.AppendU32(job->crc);
  Status st = WriteAll(&out_, header.data(), header.size(), path_);
  if (st.ok()) st = WriteAll(&out_, stored.data(), stored.size(), path_);
  DMB_RETURN_NOT_OK(st);

  IndexEntry entry;
  entry.offset = offset_;
  entry.stored_len = static_cast<int64_t>(stored.size());
  entry.raw_len = static_cast<int64_t>(job->raw.size());
  entry.record_count = job->records;
  entry.codec = job->codec;
  index_.push_back(entry);
  offset_ += kBlockHeaderBytes + entry.stored_len;
  ++stats_.blocks;
  if (job->on_pool) ++stats_.overlapped_blocks;
  return Status::OK();
}

void BlockWriter::AbandonJobs() {
  if (jobs_.empty()) return;
  ParallelContext* ctx = options_.parallel;
  while (!jobs_.empty()) {
    WaitJobDone(jobs_.front().get());
    jobs_.pop_front();
    ctx->ReleaseBlockSlot();
  }
}

Status BlockWriter::Finish() {
  DMB_RETURN_NOT_OK(status_);
  if (finished_) {
    return Status::FailedPrecondition("Finish called twice");
  }
  DMB_RETURN_NOT_OK(FlushBlock());
  if (overlapped()) DMB_RETURN_NOT_OK(DrainJobs(/*all=*/true));
  finished_ = true;

  ByteBuffer footer;
  footer.AppendByte(kBlockFileVersion);
  footer.AppendByte(static_cast<uint8_t>(options_.codec));
  footer.AppendVarint(index_.size());
  for (const IndexEntry& e : index_) {
    footer.AppendVarint(static_cast<uint64_t>(e.offset));
    footer.AppendVarint(static_cast<uint64_t>(e.stored_len));
    footer.AppendVarint(static_cast<uint64_t>(e.raw_len));
    footer.AppendVarint(static_cast<uint64_t>(e.record_count));
    footer.AppendByte(static_cast<uint8_t>(e.codec));
  }
  ByteBuffer trailer;
  trailer.AppendU32(static_cast<uint32_t>(footer.size()));
  trailer.AppendU32(Crc32(footer.view()));
  trailer.AppendU64(kBlockFileMagic);

  DMB_RETURN_NOT_OK(WriteAll(&out_, footer.data(), footer.size(), path_));
  DMB_RETURN_NOT_OK(WriteAll(&out_, trailer.data(), trailer.size(), path_));
  out_.flush();
  if (!out_.good()) {
    return Status::IOError("flush failed: " + path_);
  }
  out_.close();
  stats_.file_bytes = offset_ + static_cast<int64_t>(footer.size()) +
                      static_cast<int64_t>(trailer.size());
  return Status::OK();
}

// ---- BlockReader -----------------------------------------------------

Result<BlockReader> BlockReader::Open(const std::string& path) {
  BlockReader reader;
  reader.path_ = path;
  reader.in_.open(path, std::ios::binary);
  if (!reader.in_.is_open()) {
    return Status::IOError("cannot open block file: " + path);
  }
  reader.in_.seekg(0, std::ios::end);
  const int64_t file_size = static_cast<int64_t>(reader.in_.tellg());
  if (file_size < kBlockFileTrailerBytes) {
    return Status::Corruption("not a block file (too short): " + path);
  }

  char trailer_bytes[kBlockFileTrailerBytes];
  DMB_RETURN_NOT_OK(ReadAll(&reader.in_, file_size - kBlockFileTrailerBytes,
                            trailer_bytes, sizeof(trailer_bytes), path));
  ByteReader trailer(trailer_bytes, sizeof(trailer_bytes));
  uint32_t footer_len = 0, footer_crc = 0;
  uint64_t magic = 0;
  DMB_RETURN_NOT_OK(trailer.ReadU32(&footer_len));
  DMB_RETURN_NOT_OK(trailer.ReadU32(&footer_crc));
  DMB_RETURN_NOT_OK(trailer.ReadU64(&magic));
  if (magic != kBlockFileMagic) {
    return Status::Corruption("bad magic (not a block file): " + path);
  }
  const int64_t data_end =
      file_size - kBlockFileTrailerBytes - static_cast<int64_t>(footer_len);
  if (data_end < 0) {
    return Status::Corruption("footer length exceeds file: " + path);
  }

  std::string footer_bytes(footer_len, '\0');
  DMB_RETURN_NOT_OK(
      ReadAll(&reader.in_, data_end, footer_bytes.data(), footer_len, path));
  if (Crc32(footer_bytes) != footer_crc) {
    return Status::Corruption("footer checksum mismatch: " + path);
  }

  ByteReader footer(footer_bytes);
  uint8_t version = 0, codec_id = 0;
  DMB_RETURN_NOT_OK(footer.ReadBytes(&version, 1));
  DMB_RETURN_NOT_OK(footer.ReadBytes(&codec_id, 1));
  if (version != kBlockFileVersion) {
    return Status::Corruption("unsupported block file version " +
                              std::to_string(version) + ": " + path);
  }
  if (!IsKnownCodec(codec_id)) {
    return Status::Corruption("unknown codec id " + std::to_string(codec_id) +
                              ": " + path);
  }
  reader.codec_ = static_cast<Codec>(codec_id);
  uint64_t block_count = 0;
  DMB_RETURN_NOT_OK(footer.ReadVarint(&block_count));

  int64_t expected_offset = 0;
  reader.blocks_.reserve(static_cast<size_t>(block_count));
  for (uint64_t i = 0; i < block_count; ++i) {
    BlockInfo info;
    uint64_t offset = 0, stored_len = 0, raw_len = 0, record_count = 0;
    uint8_t block_codec = 0;
    DMB_RETURN_NOT_OK(footer.ReadVarint(&offset));
    DMB_RETURN_NOT_OK(footer.ReadVarint(&stored_len));
    DMB_RETURN_NOT_OK(footer.ReadVarint(&raw_len));
    DMB_RETURN_NOT_OK(footer.ReadVarint(&record_count));
    DMB_RETURN_NOT_OK(footer.ReadBytes(&block_codec, 1));
    info.offset = static_cast<int64_t>(offset);
    info.stored_len = static_cast<int64_t>(stored_len);
    info.raw_len = static_cast<int64_t>(raw_len);
    info.record_count = static_cast<int64_t>(record_count);
    if (!IsKnownCodec(block_codec)) {
      return Status::Corruption("unknown block codec id " +
                                std::to_string(block_codec) + ": " + path);
    }
    info.codec = static_cast<Codec>(block_codec);
    if (info.offset != expected_offset ||
        info.offset + kBlockHeaderBytes + info.stored_len > data_end ||
        info.stored_len > std::numeric_limits<uint32_t>::max() ||
        info.raw_len > std::numeric_limits<uint32_t>::max()) {
      return Status::Corruption("block index entry " + std::to_string(i) +
                                " out of bounds: " + path);
    }
    expected_offset = info.offset + kBlockHeaderBytes + info.stored_len;
    reader.stats_.records += info.record_count;
    reader.stats_.raw_bytes += info.raw_len;
    if (info.raw_len > reader.max_block_raw_bytes_) {
      reader.max_block_raw_bytes_ = info.raw_len;
    }
    reader.blocks_.push_back(info);
  }
  if (!footer.AtEnd()) {
    return Status::Corruption("trailing bytes after block index: " + path);
  }
  if (expected_offset != data_end) {
    return Status::Corruption("block data does not span the file: " + path);
  }
  reader.stats_.blocks = static_cast<int64_t>(reader.blocks_.size());
  reader.stats_.file_bytes = file_size;
  return reader;
}

Status BlockReader::ReadBlock(size_t i, std::string* raw) {
  if (i >= blocks_.size()) {
    return Status::InvalidArgument("block index out of range");
  }
  const BlockInfo& info = blocks_[i];
  // One seek+read for header and payload together (the index already
  // knows stored_len) — halves the I/O calls on the merge hot path.
  stored_.resize(static_cast<size_t>(kBlockHeaderBytes + info.stored_len));
  DMB_RETURN_NOT_OK(
      ReadAll(&in_, info.offset, stored_.data(), stored_.size(), path_));
  ByteReader header(stored_.data(), kBlockHeaderBytes);
  uint32_t record_count = 0, raw_len = 0, stored_len = 0, crc = 0;
  uint8_t codec_id = 0;
  DMB_RETURN_NOT_OK(header.ReadU32(&record_count));
  DMB_RETURN_NOT_OK(header.ReadU32(&raw_len));
  DMB_RETURN_NOT_OK(header.ReadU32(&stored_len));
  DMB_RETURN_NOT_OK(header.ReadBytes(&codec_id, 1));
  DMB_RETURN_NOT_OK(header.ReadU32(&crc));
  // The header duplicates the footer index entry; any disagreement means
  // one of them was damaged.
  if (static_cast<int64_t>(record_count) != info.record_count ||
      static_cast<int64_t>(raw_len) != info.raw_len ||
      static_cast<int64_t>(stored_len) != info.stored_len ||
      codec_id != static_cast<uint8_t>(info.codec)) {
    return Status::Corruption("block " + std::to_string(i) +
                              " header disagrees with footer index: " + path_);
  }
  const std::string_view payload(stored_.data() + kBlockHeaderBytes,
                                 static_cast<size_t>(info.stored_len));
  if (Crc32(payload) != crc) {
    return Status::Corruption("block " + std::to_string(i) +
                              " checksum mismatch: " + path_);
  }
  DMB_RETURN_NOT_OK(Decompress(info.codec, payload, raw_len, raw));
  return Status::OK();
}

}  // namespace dmb::io
