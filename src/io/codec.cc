#include "io/codec.h"

#include "datagen/codec.h"

namespace dmb::io {

const char* CodecName(Codec codec) {
  switch (codec) {
    case Codec::kNone:
      return "none";
    case Codec::kLz:
      return "lz";
  }
  return "unknown";
}

Result<Codec> ParseCodec(std::string_view name) {
  if (name == "none") return Codec::kNone;
  if (name == "lz") return Codec::kLz;
  return Status::InvalidArgument("unknown spill codec: " + std::string(name));
}

bool IsKnownCodec(uint8_t id) {
  return id == static_cast<uint8_t>(Codec::kNone) ||
         id == static_cast<uint8_t>(Codec::kLz);
}

void Compress(Codec codec, std::string_view input, std::string* out) {
  Compressor().Compress(codec, input, out);
}

void Compressor::Compress(Codec codec, std::string_view input,
                          std::string* out) {
  switch (codec) {
    case Codec::kNone:
      out->assign(input);
      return;
    case Codec::kLz:
      lz_.Compress(input, out);
      return;
  }
  out->assign(input);
}

Status Decompress(Codec codec, std::string_view input, size_t raw_len,
                  std::string* out) {
  switch (codec) {
    case Codec::kNone:
      if (input.size() != raw_len) {
        return Status::Corruption("stored block length " +
                                  std::to_string(input.size()) +
                                  " != raw length " + std::to_string(raw_len));
      }
      out->assign(input);
      return Status::OK();
    case Codec::kLz:
      return datagen::LzDecompressInto(input, raw_len, out);
  }
  return Status::Corruption("unknown codec id " +
                            std::to_string(static_cast<int>(codec)));
}

}  // namespace dmb::io
