#include "dfs/dfsio.h"

#include <string>
#include <vector>

#include "dfs/hdfs_model.h"
#include "sim/fluid.h"
#include "sim/proc.h"
#include "sim/simulator.h"

namespace dmb::dfs {

namespace {

struct TaskStats {
  double seconds = 0.0;
  int64_t bytes = 0;
};

sim::Proc DfsioTask(sim::Simulator* sim, HdfsModel* hdfs, int node,
                    std::string path, int64_t bytes, double startup_s,
                    bool read_mode, TaskStats* stats) {
  const double start = sim->Now();
  co_await sim::Delay(sim, startup_s);
  if (read_mode) {
    co_await hdfs->ReadFile(node, path);
  } else {
    co_await hdfs->WriteFile(node, path, bytes);
  }
  stats->seconds = sim->Now() - start;
  stats->bytes = bytes;
}

}  // namespace

DfsioResult RunDfsio(const DfsioOptions& options) {
  sim::Simulator sim;
  sim::FluidSystem fluid(&sim);
  cluster::SimCluster cluster(&sim, &fluid, options.cluster);
  DfsConfig dfs_config = options.dfs;
  dfs_config.num_nodes = options.cluster.num_nodes;
  Namenode namenode(dfs_config);
  HdfsModel hdfs(&cluster, &namenode);

  const int files = options.num_files;
  const int64_t per_file = options.total_bytes / files;
  std::vector<TaskStats> stats(static_cast<size_t>(files));

  // For a read test the files must exist first; create them instantly
  // (metadata only) so the read test measures only the read path.
  if (options.read_mode) {
    for (int i = 0; i < files; ++i) {
      auto r = namenode.CreateFile("/dfsio/" + std::to_string(i), per_file,
                                   i % cluster.num_nodes());
      DMB_CHECK(r.ok());
    }
  }

  sim::Spawner spawner(&sim);
  sim::WaitGroup wg(&sim);
  for (int i = 0; i < files; ++i) {
    wg.Add();
    spawner.Spawn(
        DfsioTask(&sim, &hdfs, i % cluster.num_nodes(),
                  "/dfsio/" + std::to_string(i), per_file,
                  options.task_startup_s, options.read_mode, &stats[i]),
        &wg);
  }
  const double t0 = sim.Now();
  sim.Run();

  DfsioResult result;
  result.job_seconds = sim.Now() - t0;
  double sum_rate = 0.0;
  for (const auto& s : stats) {
    if (s.seconds > 0) sum_rate += ToMiB(s.bytes) / s.seconds;
  }
  result.throughput_mbps = sum_rate / files;
  result.aggregate_mbps =
      ToMiB(options.total_bytes) / std::max(result.job_seconds, 1e-9);
  return result;
}

}  // namespace dmb::dfs
