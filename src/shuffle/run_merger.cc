#include "shuffle/run_merger.h"

#include <algorithm>
#include <utility>

#include "common/temp_dir.h"
#include "core/kv.h"

namespace dmb::shuffle {

namespace {

/// A positioned cursor over one sorted run. Peeked views stay valid
/// until the next Pop().
class RunCursor {
 public:
  virtual ~RunCursor() = default;
  virtual bool has_current() const = 0;
  virtual std::string_view key() const = 0;
  virtual std::string_view value() const = 0;
  virtual void Pop() = 0;
  virtual const Status& status() const = 0;
};

class ArenaCursor final : public RunCursor {
 public:
  ArenaCursor(std::shared_ptr<const KVArena> arena,
              std::vector<KVSlice> slices)
      : arena_(std::move(arena)), slices_(std::move(slices)) {}

  bool has_current() const override { return pos_ < slices_.size(); }
  std::string_view key() const override {
    return arena_->KeyOf(slices_[pos_]);
  }
  std::string_view value() const override {
    return arena_->ValueOf(slices_[pos_]);
  }
  void Pop() override { ++pos_; }
  const Status& status() const override { return status_; }

 private:
  std::shared_ptr<const KVArena> arena_;
  std::vector<KVSlice> slices_;
  size_t pos_ = 0;
  Status status_;
};

/// Streams over an owned EncodeKV batch; record views alias the owned
/// bytes, so no per-record allocation during the merge.
class EncodedCursor final : public RunCursor {
 public:
  explicit EncodedCursor(std::string bytes)
      : bytes_(std::move(bytes)), reader_(bytes_) {
    Advance();
  }

  bool has_current() const override { return has_current_; }
  std::string_view key() const override { return key_; }
  std::string_view value() const override { return value_; }
  void Pop() override { Advance(); }
  const Status& status() const override { return status_; }

 private:
  void Advance() {
    has_current_ = reader_.Next(&key_, &value_);
    if (!has_current_ && !reader_.status().ok()) {
      status_ = reader_.status().WithContext("merging encoded run");
    }
  }

  std::string bytes_;
  datampi::KVBatchReader reader_;
  std::string_view key_, value_;
  bool has_current_ = false;
  Status status_;
};

/// Heap-based k-way merge, grouped by key. The heap orders cursors by
/// (key, value, run index) so output is deterministic regardless of how
/// records were distributed over runs.
class MergingGroupIterator final : public KVGroupIterator {
 public:
  explicit MergingGroupIterator(
      std::vector<std::unique_ptr<RunCursor>> cursors)
      : cursors_(std::move(cursors)) {
    for (size_t i = 0; i < cursors_.size(); ++i) {
      if (cursors_[i]->has_current()) {
        heap_.push_back(i);
      } else if (!cursors_[i]->status().ok()) {
        status_ = cursors_[i]->status();
      }
    }
    std::make_heap(heap_.begin(), heap_.end(), HeapGreater{this});
  }

  bool NextGroup(std::string* key,
                 std::vector<std::string>* values) override {
    values->clear();
    if (!status_.ok() || heap_.empty()) return false;
    key->assign(cursors_[heap_.front()]->key());
    while (!heap_.empty() && cursors_[heap_.front()]->key() == *key) {
      std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{this});
      const size_t idx = heap_.back();
      values->emplace_back(cursors_[idx]->value());
      cursors_[idx]->Pop();
      if (cursors_[idx]->has_current()) {
        std::push_heap(heap_.begin(), heap_.end(), HeapGreater{this});
      } else {
        heap_.pop_back();
        if (!cursors_[idx]->status().ok()) {
          status_ = cursors_[idx]->status();
          return false;
        }
      }
    }
    return true;
  }

  const Status& status() const override { return status_; }

 private:
  /// std::push_heap et al. expect a max-heap comparator; inverting it
  /// keeps the smallest (key, value, index) at the front.
  struct HeapGreater {
    const MergingGroupIterator* it;
    bool operator()(size_t a, size_t b) const {
      const RunCursor& ca = *it->cursors_[a];
      const RunCursor& cb = *it->cursors_[b];
      if (ca.key() != cb.key()) return ca.key() > cb.key();
      if (ca.value() != cb.value()) return ca.value() > cb.value();
      return a > b;
    }
  };

  std::vector<std::unique_ptr<RunCursor>> cursors_;
  std::vector<size_t> heap_;
  Status status_;
};

/// Arrival-order singleton groups over arena slices.
class FifoGroupIterator final : public KVGroupIterator {
 public:
  FifoGroupIterator(std::shared_ptr<const KVArena> arena,
                    std::vector<KVSlice> slices)
      : arena_(std::move(arena)), slices_(std::move(slices)) {}

  bool NextGroup(std::string* key,
                 std::vector<std::string>* values) override {
    if (pos_ >= slices_.size()) return false;
    key->assign(arena_->KeyOf(slices_[pos_]));
    values->clear();
    values->emplace_back(arena_->ValueOf(slices_[pos_]));
    ++pos_;
    return true;
  }

  const Status& status() const override { return status_; }

 private:
  std::shared_ptr<const KVArena> arena_;
  std::vector<KVSlice> slices_;
  size_t pos_ = 0;
  Status status_;
};

}  // namespace

void RunMerger::AddArenaRun(std::shared_ptr<const KVArena> arena,
                            std::vector<KVSlice> slices) {
  if (slices.empty()) return;
  arena_runs_.push_back(ArenaRun{std::move(arena), std::move(slices)});
}

void RunMerger::AddEncodedRun(std::string bytes) {
  if (bytes.empty()) return;
  encoded_runs_.push_back(std::move(bytes));
}

Status RunMerger::AddFileRun(const std::string& path) {
  DMB_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  AddEncodedRun(std::move(bytes));
  return Status::OK();
}

size_t RunMerger::run_count() const {
  return arena_runs_.size() + encoded_runs_.size();
}

std::unique_ptr<KVGroupIterator> RunMerger::Merge() {
  std::vector<std::unique_ptr<RunCursor>> cursors;
  cursors.reserve(run_count());
  for (auto& run : arena_runs_) {
    cursors.push_back(std::make_unique<ArenaCursor>(std::move(run.arena),
                                                    std::move(run.slices)));
  }
  for (auto& bytes : encoded_runs_) {
    cursors.push_back(std::make_unique<EncodedCursor>(std::move(bytes)));
  }
  arena_runs_.clear();
  encoded_runs_.clear();
  return std::make_unique<MergingGroupIterator>(std::move(cursors));
}

std::unique_ptr<KVGroupIterator> RunMerger::Fifo(
    std::shared_ptr<const KVArena> arena, std::vector<KVSlice> slices) {
  return std::make_unique<FifoGroupIterator>(std::move(arena),
                                             std::move(slices));
}

}  // namespace dmb::shuffle
