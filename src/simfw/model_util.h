// Internal helpers shared by the three framework models.

#ifndef DATAMPI_BENCH_SIMFW_MODEL_UTIL_H_
#define DATAMPI_BENCH_SIMFW_MODEL_UTIL_H_

#include <memory>
#include <vector>

#include "simfw/env.h"
#include "simfw/profiles.h"

namespace dmb::simfw::internal {

/// \brief Wraps a fluid transfer in a spawnable process.
sim::Proc RunTransfer(sim::FluidSystem::Transfer t);

/// \brief Derived byte quantities of one (possibly chained) job.
struct JobBytes {
  double disk_in_mb = 0.0;
  double logical_mb = 0.0;
  double shuffle_mb = 0.0;
  double out_logical_mb = 0.0;
  double out_disk_mb = 0.0;
  double logical_per_disk = 1.0;
};

JobBytes ComputeJobBytes(const WorkloadProfile& profile, double data_mb);

/// \brief Per-node task-slot semaphores.
std::vector<std::unique_ptr<sim::Semaphore>> MakeSlots(sim::Simulator* sim,
                                                       int nodes, int slots);

/// \brief Overcommit spill multiplier: slots beyond the tuned 4/node
/// shrink per-task sort buffers and add merge passes (Figure 2b's dip).
double OvercommitSpillFactor(int slots_per_node);

/// \brief Overcommit CPU multiplier: beyond 4 slots/node the smaller
/// per-task heaps raise GC pressure and context-switch overhead, the
/// other half of Figure 2b's dip.
double OvercommitCpuFactor(int slots_per_node, double penalty = 0.30);

}  // namespace dmb::simfw::internal

#endif  // DATAMPI_BENCH_SIMFW_MODEL_UTIL_H_
