// Tests for the runtime validation plane (common/wait_graph.h): the
// wait-for-graph deadlock detector fires on injected cycles — a
// two-thread ABBA lock cycle and a channel producer/consumer cycle —
// with the full cycle in the report, stays silent on healthy
// pool/channel workloads even with aggressive confirmation settings,
// and the inflight-slot acquisition discipline check reports re-entrant
// blocking acquires.
//
// Every test installs a capturing failure handler (the default aborts),
// flips the graph on explicitly, and restores the prior state on exit
// so the rest of the binary is unaffected.

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "common/parallel.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/wait_graph.h"
#include "shuffle/batch_channel.h"

namespace dmb {
namespace {

using shuffle::BatchChannelGroup;
using datampi::KVPair;

std::vector<KVPair> OneRecordBatch(const std::string& tag) {
  return {KVPair{tag, tag}};
}

/// Collects reports from the WaitGraph failure handler (which runs on
/// the detached monitor thread) and lets the test thread await the
/// first one with a deadline.
class ReportCapture {
 public:
  void Add(const std::string& report) {
    MutexLock lock(mu_);
    reports_.push_back(report);
    cv_.NotifyAll();
  }

  /// First report, or nullopt if none arrives within `timeout`.
  std::optional<std::string> WaitForReport(std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    while (reports_.empty()) {
      if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout &&
          reports_.empty()) {
        return std::nullopt;
      }
    }
    return reports_.front();
  }

  std::vector<std::string> Reports() {
    MutexLock lock(mu_);
    return reports_;
  }

 private:
  Mutex mu_;
  CondVar cv_;
  std::vector<std::string> reports_ DMB_GUARDED_BY(mu_);
};

class WaitGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = WaitGraph::enabled();
    WaitGraph::Options fast;
    fast.confirm_rounds = 2;
    fast.confirm_interval_ms = 20;
    WaitGraph::Global().SetOptions(fast);
    WaitGraph::Global().SetFailureHandler(
        [this](const std::string& report) { capture_.Add(report); });
    WaitGraph::SetEnabled(true);
  }

  void TearDown() override {
    WaitGraph::SetEnabled(was_enabled_);
    WaitGraph::Global().SetFailureHandler(nullptr);
    WaitGraph::Global().SetOptions(WaitGraph::Options{});
  }

  ReportCapture capture_;
  bool was_enabled_ = false;
};

// Two threads, two resources, classic ABBA: t1 holds A and waits for B,
// t2 holds B and waits for A. Both park on a control condvar (the graph
// only models the waits; the deadlock is injected, not real) until the
// detector has fired, then unwind cleanly.
TEST_F(WaitGraphTest, InjectedLockCycleIsReportedWithFullCycle) {
  int resource_a = 0;
  int resource_b = 0;

  // Local control state shared only with the two lambdas below; the
  // analysis cannot guard locals captured by reference.
  Mutex ctl_mu;  // lint:allow(mutex-unguarded)
  CondVar ctl_cv;
  int ready = 0;              // threads that registered their hold
  bool release = false;       // set after the report arrives
  auto parked = [&](const void* wait_res, const char* wait_label,
                    const void* held_res) {
    {
      MutexLock lock(ctl_mu);
      ++ready;
      ctl_cv.NotifyAll();
      // Both holds must exist before either wait begins, so whichever
      // BeginWait runs second sees the complete cycle.
      while (ready < 2) ctl_cv.Wait(ctl_mu);
    }
    {
      WaitScope waiting(wait_res, wait_label);
      MutexLock lock(ctl_mu);
      while (!release) ctl_cv.Wait(ctl_mu);
    }
    WaitGraph::Global().Released(held_res);
  };

  std::thread t1([&] {
    WaitGraph::Global().Acquired(&resource_a, "lock A");
    parked(&resource_b, "t1 waiting for lock B", &resource_a);
  });
  std::thread t2([&] {
    WaitGraph::Global().Acquired(&resource_b, "lock B");
    parked(&resource_a, "t2 waiting for lock A", &resource_b);
  });

  const std::optional<std::string> report =
      capture_.WaitForReport(std::chrono::seconds(10));

  {
    MutexLock lock(ctl_mu);
    release = true;
    ctl_cv.NotifyAll();
  }
  t1.join();
  t2.join();

  ASSERT_TRUE(report.has_value()) << WaitGraph::Global().DebugString();
  EXPECT_NE(report->find("deadlock detected"), std::string::npos) << *report;
  // The full cycle: both resources, both wait labels, the held edges,
  // and the closing back-reference.
  EXPECT_NE(report->find("\"lock A\""), std::string::npos) << *report;
  EXPECT_NE(report->find("\"lock B\""), std::string::npos) << *report;
  EXPECT_NE(report->find("t1 waiting for lock B"), std::string::npos)
      << *report;
  EXPECT_NE(report->find("t2 waiting for lock A"), std::string::npos)
      << *report;
  EXPECT_NE(report->find("holds:"), std::string::npos) << *report;
  EXPECT_NE(report->find("cycle closed"), std::string::npos) << *report;
}

// A real (not API-injected) deadlock through the instrumented channel
// paths: producer P fills ch1 past its backpressure bound and parks in
// Push; consumer C drains ch1 once, then parks in Pull on ch2, whose
// only producer is... P. P waits for C (ch1 space), C waits for P (ch2
// data): a genuine cross-channel cycle, reported with both edges.
TEST_F(WaitGraphTest, ChannelProducerConsumerCycleIsReported) {
  BatchChannelGroup::Options opts;
  opts.partitions = 1;
  opts.max_buffered_batches = 1;
  BatchChannelGroup ch1(opts);
  BatchChannelGroup ch2(opts);

  std::thread producer([&] {
    // Registers this thread as ch2's data-side holder, then blocks on
    // ch1's backpressure window (capacity 1, the consumer pulls exactly
    // once, so the third push can never complete).
    Status seed = ch2.Push(0, OneRecordBatch("seed"));
    EXPECT_TRUE(seed.ok()) << seed.ToString();
    for (int i = 0; i < 3; ++i) {
      // The final push parks until the test Cancel()s the channel; the
      // cancel status (or OK for the buffered ones) is expected.
      Status pushed = ch1.Push(0, OneRecordBatch("fill"));
      (void)pushed;
    }
  });
  std::thread consumer([&] {
    std::vector<KVPair> batch;
    // One pull registers this thread as ch1's space-side holder and
    // leaves the producer permanently over budget.
    Result<bool> got = ch1.Pull(0, &batch);
    EXPECT_TRUE(got.ok() && got.value());
    // Drain the seed batch, then park on empty ch2 forever: its
    // producer is stuck in ch1.Push above.
    got = ch2.Pull(0, &batch);
    EXPECT_TRUE(got.ok() && got.value());
    got = ch2.Pull(0, &batch);  // parks; fails once the test cancels
    EXPECT_FALSE(got.ok());
  });

  const std::optional<std::string> report =
      capture_.WaitForReport(std::chrono::seconds(10));

  // Break the deadlock so the threads can unwind: the producer's
  // pending Push returns the cancel status, the consumer's pending
  // Pull fails with it.
  const Status broken = Status::Internal("test breaks the cycle");
  ch1.Cancel(broken);
  ch2.Cancel(broken);
  producer.join();
  consumer.join();

  ASSERT_TRUE(report.has_value()) << WaitGraph::Global().DebugString();
  EXPECT_NE(report->find("deadlock detected"), std::string::npos) << *report;
  // Both edges of the cycle: the producer parked on ch1's space side,
  // the consumer parked on ch2's data side.
  EXPECT_NE(report->find("Push backpressure"), std::string::npos) << *report;
  EXPECT_NE(report->find("Pull drain"), std::string::npos) << *report;
  EXPECT_NE(report->find("channel[0] space"), std::string::npos) << *report;
  EXPECT_NE(report->find("channel[0] data"), std::string::npos) << *report;
  EXPECT_NE(report->find("cycle closed"), std::string::npos) << *report;
}

// Healthy concurrency — pool Submit/Wait, help-while-wait TaskGroup
// joins, contended inflight-slot acquires, a backpressured channel
// stream — must never trip the detector, even with the confirmation
// settings cranked down far below their defaults.
TEST_F(WaitGraphTest, NoFalsePositiveOnHealthyPoolAndChannelWorkload) {
  WaitGraph::Options aggressive;
  aggressive.confirm_rounds = 2;
  aggressive.confirm_interval_ms = 10;
  WaitGraph::Global().SetOptions(aggressive);

  // Pool churn: bursts of short tasks with full-drain barriers between.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int burst = 0; burst < 3; ++burst) {
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(pool.Submit([&ran] {
        ran.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }));
    }
    pool.Wait();
  }
  EXPECT_EQ(ran.load(), 3 * 64);

  // Contended slot budget: more concurrent acquirers than slots, so
  // AcquireBlockSlot's RunUntil help-while-wait path runs hot.
  ParallelContext::Options ctx_opts;
  ctx_opts.threads = 4;
  ctx_opts.max_inflight_blocks = 2;
  ParallelContext ctx(ctx_opts);
  ASSERT_TRUE(ctx.enabled());
  TaskGroup group(&ctx);
  for (int i = 0; i < 32; ++i) {
    group.Run([&ctx] {
      ctx.AcquireBlockSlot();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      ctx.ReleaseBlockSlot();
    });
  }
  group.Wait();

  // Backpressured producer/consumer stream that completes normally.
  BatchChannelGroup::Options ch_opts;
  ch_opts.partitions = 2;
  ch_opts.max_buffered_batches = 1;
  BatchChannelGroup channel(ch_opts);
  std::thread producer([&channel] {
    for (int i = 0; i < 16; ++i) {
      Status pushed =
          channel.Push(i % 2, OneRecordBatch("r" + std::to_string(i)));
      EXPECT_TRUE(pushed.ok()) << pushed.ToString();
    }
    channel.CloseAll(Status::OK());
  });
  std::vector<std::thread> consumers;
  std::atomic<int> pulled{0};
  for (int p = 0; p < 2; ++p) {
    consumers.emplace_back([&channel, &pulled, p] {
      Status drained = shuffle::DrainChannel(
          &channel, p,
          [&pulled](std::string_view, std::string_view) -> Status {
            pulled.fetch_add(1, std::memory_order_relaxed);
            return Status::OK();
          });
      EXPECT_TRUE(drained.ok()) << drained.ToString();
    });
  }
  producer.join();
  for (auto& c : consumers) c.join();
  EXPECT_EQ(pulled.load(), 16);

  // Give the monitor several confirmation windows to mis-fire on any
  // stale candidate before declaring the workload clean.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const std::vector<std::string> reports = capture_.Reports();
  EXPECT_TRUE(reports.empty()) << reports.front();
}

// The AcquireBlockSlot doc contract ("only safe for callers holding no
// slots") is machine-checked when the graph is on: a re-entrant
// blocking acquire reports a discipline violation through the failure
// handler instead of risking a budget deadlock.
TEST_F(WaitGraphTest, ReentrantBlockSlotAcquireReportsViolation) {
  ParallelContext::Options opts;
  opts.threads = 2;
  opts.max_inflight_blocks = 2;
  ParallelContext ctx(opts);
  ASSERT_TRUE(ctx.enabled());

  ctx.AcquireBlockSlot();
  EXPECT_TRUE(capture_.Reports().empty());  // first acquire is fine

  ctx.AcquireBlockSlot();  // re-entrant: flagged, then proceeds
  const std::vector<std::string> reports = capture_.Reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_NE(reports.front().find("AcquireBlockSlot while already holding"),
            std::string::npos)
      << reports.front();

  ctx.ReleaseBlockSlot();
  ctx.ReleaseBlockSlot();

  // TryAcquireBlockSlot is the sanctioned re-entrant form: no report.
  ASSERT_TRUE(ctx.TryAcquireBlockSlot());
  ASSERT_TRUE(ctx.TryAcquireBlockSlot());
  ctx.ReleaseBlockSlot();
  ctx.ReleaseBlockSlot();
  EXPECT_EQ(capture_.Reports().size(), 1u);
}

}  // namespace
}  // namespace dmb
