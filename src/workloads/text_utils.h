// Shared text-processing kernels used by the workloads.

#ifndef DATAMPI_BENCH_WORKLOADS_TEXT_UTILS_H_
#define DATAMPI_BENCH_WORKLOADS_TEXT_UTILS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dmb::workloads {

/// \brief Splits on runs of spaces/tabs; empty tokens are dropped.
std::vector<std::string_view> Tokenize(std::string_view line);

/// \brief Calls `fn` for every token without materializing a vector.
void ForEachToken(std::string_view line,
                  const std::function<void(std::string_view)>& fn);

/// \brief Grep matcher: a tiny regex subset ("literal", '.', '*' on the
/// previous atom, '^'/'$' anchors, "[a-z]" classes) compiled once and
/// applied per line — the shape of BigDataBench's Grep workload.
class GrepPattern {
 public:
  explicit GrepPattern(std::string pattern);

  /// \brief True if the pattern occurs anywhere in the line (unanchored
  /// unless '^'/'$' are used).
  bool Matches(std::string_view line) const;

  /// \brief Number of non-overlapping occurrences.
  int CountMatches(std::string_view line) const;

  const std::string& pattern() const { return pattern_; }

 private:
  struct Atom {
    enum class Kind { kLiteral, kAny, kClass } kind = Kind::kLiteral;
    char literal = 0;
    char class_lo = 0, class_hi = 0;
    bool star = false;
  };
  bool MatchHere(std::string_view text, size_t atom_idx, size_t* end) const;

  std::string pattern_;
  std::vector<Atom> atoms_;
  bool anchored_begin_ = false;
  bool anchored_end_ = false;
};

/// \brief Reference single-threaded word count (verification oracle).
std::map<std::string, int64_t> ReferenceWordCount(
    const std::vector<std::string>& lines);

/// \brief Reference grep: returns matching lines in order.
std::vector<std::string> ReferenceGrep(const std::vector<std::string>& lines,
                                       const GrepPattern& pattern);

}  // namespace dmb::workloads

#endif  // DATAMPI_BENCH_WORKLOADS_TEXT_UTILS_H_
