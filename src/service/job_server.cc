#include "service/job_server.h"

#include <algorithm>
#include <optional>

#include "common/wait_graph.h"
#include "runtime/scheduler.h"

namespace dmb::service {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

JobServer::JobServer(engine::Engine* engine, JobServerOptions options)
    : engine_(engine),
      options_(options),
      start_tp_(Clock::now()) {
  const int stage_threads = options_.stage_pool_threads > 0
                                ? options_.stage_pool_threads
                                : 2 * std::max(1, options_.worker_threads);
  stage_pool_ = std::make_unique<ThreadPool>(stage_threads);
  workers_.reserve(static_cast<size_t>(std::max(1, options_.worker_threads)));
  for (int i = 0; i < std::max(1, options_.worker_threads); ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  reaper_ = std::thread([this] { ReaperLoop(); });
}

JobServer::~JobServer() { Shutdown(); }

JobServer::Tenant& JobServer::GetTenant(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_.emplace(name, Tenant{}).first;
    it->second.config = options_.default_tenant;
    it->second.budget.set_quota(it->second.config.quota_bytes);
    queue_.SetWeight(name, it->second.config.weight);
  }
  return it->second;
}

void JobServer::ConfigureTenant(const std::string& tenant,
                                TenantConfig config) {
  MutexLock lock(mu_);
  Tenant& t = GetTenant(tenant);
  t.config = config;
  t.budget.set_quota(config.quota_bytes);
  queue_.SetWeight(tenant, config.weight);
}

Result<JobId> JobServer::Submit(JobRequest request) {
  const Clock::time_point t0 = Clock::now();
  if (request.tenant.empty()) {
    return Status::InvalidArgument("JobRequest.tenant must be set");
  }
  if (request.plan.empty()) {
    return Status::InvalidArgument("JobRequest.plan has no stages");
  }
  DMB_RETURN_NOT_OK(request.plan.Validate());
  int64_t charge = request.memory_budget_bytes;
  if (charge <= 0) {
    for (const auto& stage : request.plan.stages()) {
      charge = std::max(charge, stage.spec.job.memory_budget_bytes);
    }
  }
  if (charge <= 0) charge = options_.default_charge_bytes;

  MutexLock lock(mu_);
  if (shutdown_) {
    return Status::FailedPrecondition("job server is shut down");
  }
  Tenant& tenant = GetTenant(request.tenant);
  ++tenant.counters.submitted;
  if (charge > tenant.budget.quota()) {
    ++tenant.counters.rejected;
    return Status::ResourceExhausted(
        "job charge of " + std::to_string(charge) + " bytes exceeds tenant '" +
        request.tenant + "' quota of " +
        std::to_string(tenant.budget.quota()) + " bytes");
  }
  if (queue_.TenantQueued(request.tenant) >=
      static_cast<size_t>(options_.max_queued_jobs_per_tenant)) {
    ++tenant.counters.rejected;
    return Status::ResourceExhausted(
        "tenant '" + request.tenant + "' queue is full (" +
        std::to_string(options_.max_queued_jobs_per_tenant) + " jobs)");
  }
  if (queue_.TenantQueuedBytes(request.tenant) + charge >
      options_.max_queued_bytes_per_tenant) {
    ++tenant.counters.rejected;
    return Status::ResourceExhausted(
        "tenant '" + request.tenant + "' queued charge would exceed " +
        std::to_string(options_.max_queued_bytes_per_tenant) + " bytes");
  }

  const JobId id = next_id_++;
  auto job = std::make_unique<Job>();
  job->id = id;
  job->tenant = request.tenant;
  job->charge = charge;
  job->deadline_ms = request.deadline_ms;
  job->plan = std::move(request.plan);
  job->cancel = std::make_shared<CancelToken>();
  job->submit_tp = t0;
  queue_.Push({id, request.tenant, request.priority, charge});
  if (request.deadline_ms > 0) {
    deadlines_.emplace(t0 + std::chrono::milliseconds(request.deadline_ms),
                       id);
    reaper_cv_.NotifyAll();
  }
  job->admit_seconds = Seconds(t0, Clock::now());
  jobs_.emplace(id, std::move(job));
  work_cv_.NotifyOne();
  return id;
}

void JobServer::WorkerLoop() {
  mu_.Lock();
  for (;;) {
    Job* job = nullptr;
    for (;;) {
      std::optional<QueueItem> item =
          queue_.PopNext([this](const QueueItem& it) {
            Tenant& t = GetTenant(it.tenant);
            return t.budget.in_use() + it.charge_bytes <= t.budget.quota();
          });
      if (item) {
        job = jobs_.at(item->id).get();
        break;
      }
      if (shutdown_) {
        mu_.Unlock();
        return;
      }
      // WaitGraph: a parked worker waits on the fair queue; workers
      // running jobs hold it (registered below), so a report names the
      // jobs that would have to finish for this worker to dispatch.
      WaitScope parked(&queue_, "JobServer worker fair-queue park");
      work_cv_.Wait(mu_);
    }

    Tenant& tenant = GetTenant(job->tenant);
    tenant.budget.TryCharge(job->charge);
    job->state = JobState::kRunning;
    job->dispatch_tp = Clock::now();
    ++running_jobs_;

    runtime::SchedulerOptions sched;
    sched.max_concurrent_stages = options_.max_concurrent_stages;
    sched.cancel = job->cancel;
    sched.stage_pool = stage_pool_.get();
    const runtime::Plan& plan = job->plan;

    mu_.Unlock();
    Result<runtime::PlanOutput> run = [&]() -> Result<runtime::PlanOutput> {
      // This worker holds a dispatch slot (the fair queue) and the job
      // itself; Wait(id) callers park on the job pointer.
      HoldScope slot(&queue_, "JobServer worker running a job");
      HoldScope running(job, "running job");
      return engine_->RunPlan(plan, sched);
    }();
    mu_.Lock();

    const Clock::time_point now = Clock::now();
    job->state = JobState::kDone;
    job->result.status = run.status();
    if (run.ok()) job->result.output = std::move(run).value();
    job->result.stats.admit_seconds = job->admit_seconds;
    job->result.stats.queue_seconds = Seconds(job->submit_tp, job->dispatch_tp);
    job->result.stats.run_seconds = Seconds(job->dispatch_tp, now);
    job->result.stats.total_seconds = Seconds(job->submit_tp, now);
    job->result.stats.charged_bytes = job->charge;

    tenant.budget.Release(job->charge);
    queue_.Release(job->tenant);
    --running_jobs_;
    if (job->result.status.ok()) {
      ++tenant.counters.completed;
      tenant.latency.Record(job->result.stats.total_seconds);
      latency_.Record(job->result.stats.total_seconds);
    } else if (job->result.status.code() == StatusCode::kCancelled) {
      ++tenant.counters.cancelled;
    } else {
      ++tenant.counters.failed;
    }
    done_cv_.NotifyAll();
    // Released budget may make another tenant's head admissible.
    work_cv_.NotifyAll();
  }
}

void JobServer::FinishQueuedJob(Job* job, Status status) {
  const Clock::time_point now = Clock::now();
  job->state = JobState::kDone;
  job->result.status = std::move(status);
  job->result.stats.admit_seconds = job->admit_seconds;
  job->result.stats.queue_seconds = Seconds(job->submit_tp, now);
  job->result.stats.total_seconds = Seconds(job->submit_tp, now);
  job->result.stats.charged_bytes = 0;  // never dispatched, never charged
  ++GetTenant(job->tenant).counters.cancelled;
  done_cv_.NotifyAll();
}

bool JobServer::CancelWithStatus(JobId id, const Status& status) {
  std::shared_ptr<CancelToken> token;
  {
    MutexLock lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second->state == JobState::kDone) {
      return false;
    }
    Job* job = it->second.get();
    if (job->state == JobState::kQueued) {
      queue_.Remove(id);
      FinishQueuedJob(job, status);
      return true;
    }
    token = job->cancel;
  }
  // Fired outside the lock: callbacks (the scheduler's channel fan-out)
  // must never run under the server mutex.
  token->Cancel(status);
  return true;
}

bool JobServer::Cancel(JobId id) {
  return CancelWithStatus(id, Status::Cancelled("cancelled by client"));
}

Result<JobResult> JobServer::Wait(JobId id) {
  MutexLock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second->waited) {
    return Status::NotFound("job " + std::to_string(id) +
                            " unknown or already consumed");
  }
  Job* job = it->second.get();
  job->waited = true;
  while (job->state != JobState::kDone) {
    // Queued jobs have no registered holder, so a Wait on one never
    // participates in a reported cycle (the dispatcher will get to it).
    WaitScope waiting(job, "JobServer::Wait for job completion");
    done_cv_.Wait(mu_);
  }
  JobResult result = std::move(job->result);
  jobs_.erase(id);
  return result;
}

void JobServer::ReaperLoop() {
  mu_.Lock();
  while (!shutdown_) {
    if (deadlines_.empty()) {
      reaper_cv_.Wait(mu_);
      continue;
    }
    const Clock::time_point now = Clock::now();
    if (deadlines_.top().first > now) {
      // Timed wait: never registered with the WaitGraph (it cannot be
      // part of a deadlock — it wakes on its own).
      reaper_cv_.WaitUntil(mu_, deadlines_.top().first);
      continue;
    }
    // Collect expired running jobs' tokens; fire them outside the lock.
    std::vector<std::pair<std::shared_ptr<CancelToken>, Status>> fire;
    while (!deadlines_.empty() && deadlines_.top().first <= now) {
      const JobId id = deadlines_.top().second;
      deadlines_.pop();
      auto it = jobs_.find(id);
      if (it == jobs_.end() || it->second->state == JobState::kDone) continue;
      Job* job = it->second.get();
      Status expired = Status::Cancelled(
          "deadline of " + std::to_string(job->deadline_ms) + "ms exceeded");
      if (job->state == JobState::kQueued) {
        queue_.Remove(id);
        FinishQueuedJob(job, std::move(expired));
      } else {
        fire.emplace_back(job->cancel, std::move(expired));
      }
    }
    if (!fire.empty()) {
      mu_.Unlock();
      for (auto& [token, status] : fire) token->Cancel(status);
      mu_.Lock();
    }
  }
  mu_.Unlock();
}

ServerStats JobServer::Stats() const {
  MutexLock lock(mu_);
  ServerStats stats;
  stats.cache = engine_->cache()->Stats();
  stats.uptime_seconds = Seconds(start_tp_, Clock::now());
  const double uptime = std::max(stats.uptime_seconds, 1e-9);
  for (const auto& [name, tenant] : tenants_) {
    TenantStats ts = tenant.counters;
    ts.queued = static_cast<int64_t>(queue_.TenantQueued(name));
    ts.running = queue_.Running(name);
    ts.in_use_bytes = tenant.budget.in_use();
    ts.quota_bytes = tenant.budget.quota();
    ts.jobs_per_second = static_cast<double>(ts.completed) / uptime;
    if (tenant.latency.count() > 0) {
      ts.p50_total_seconds = tenant.latency.Percentile(0.5);
      ts.p99_total_seconds = tenant.latency.Percentile(0.99);
    }
    stats.submitted += ts.submitted;
    stats.completed += ts.completed;
    stats.rejected += ts.rejected;
    stats.cancelled += ts.cancelled;
    stats.failed += ts.failed;
    stats.tenants.emplace(name, std::move(ts));
  }
  stats.queued = static_cast<int64_t>(queue_.size());
  stats.running = running_jobs_;
  stats.jobs_per_second = static_cast<double>(stats.completed) / uptime;
  if (latency_.count() > 0) {
    stats.p50_total_seconds = latency_.Percentile(0.5);
    stats.p99_total_seconds = latency_.Percentile(0.99);
  }
  return stats;
}

void JobServer::Shutdown() {
  {
    MutexLock lock(mu_);
    if (!shutdown_) {
      shutdown_ = true;
      // Every still-queued job finishes now as cancelled; running jobs
      // drain normally on the workers.
      std::vector<JobId> queued;
      for (const auto& [id, job] : jobs_) {
        if (job->state == JobState::kQueued) queued.push_back(id);
      }
      for (JobId id : queued) {
        Job* job = jobs_.at(id).get();
        queue_.Remove(id);
        FinishQueuedJob(job, Status::Cancelled("server shutting down"));
      }
    }
    work_cv_.NotifyAll();
    reaper_cv_.NotifyAll();
    done_cv_.NotifyAll();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (reaper_.joinable()) reaper_.join();
  if (stage_pool_) stage_pool_->Shutdown();
}

}  // namespace dmb::service
