#include "common/thread_pool.h"

#include <cassert>

#include "common/wait_graph.h"

namespace dmb {

// WaitGraph model: the pool itself is one resource. Threads actively
// executing a task hold it (their completion is what RunUntil/Wait
// parks wait for); sleeping joiners register as waiters. An idle
// worker parked on work_cv_ is deliberately *not* a waiter — it is
// satisfied by any outside Submit, which the graph cannot see.

ThreadPool::ThreadPool(int num_threads) {
  assert(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
  progress_cv_.NotifyAll();
  return true;
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!(queue_.empty() && active_ == 0)) {
    WaitScope waiting(this, "ThreadPool::Wait for idle");
    idle_cv_.Wait(mu_);
  }
}

bool ThreadPool::RunUntil(const std::function<bool()>& done) {
  mu_.Lock();
  for (;;) {
    if (done()) {
      mu_.Unlock();
      return true;
    }
    if (!queue_.empty()) {
      std::function<void()> task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      mu_.Unlock();
      {
        HoldScope running(this, "thread-pool task");
        task();
      }
      mu_.Lock();
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
      progress_cv_.NotifyAll();
      continue;
    }
    // Queue empty but not done: the predicate depends on tasks running
    // in workers (or other helpers); sleep until something completes or
    // new helpable work arrives. `ok` latches the wait predicate's own
    // done() evaluation — a side-effecting predicate (try-acquire) must
    // not be called again after it succeeds, or the first acquisition
    // leaks.
    bool ok = false;
    while (!((ok = done()) || !queue_.empty() ||
             (shutdown_ && active_ == 0))) {
      WaitScope waiting(this, "ThreadPool::RunUntil park");
      progress_cv_.Wait(mu_);
    }
    if (ok) {
      mu_.Unlock();
      return true;
    }
    // Shut down with nothing queued or running: no completion will ever
    // notify progress_cv_ again, so parking would sleep forever.
    if (queue_.empty() && shutdown_ && active_ == 0) {
      mu_.Unlock();
      return false;
    }
  }
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  progress_cv_.NotifyAll();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.Wait(mu_);
      if (queue_.empty()) return;  // shut down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    {
      HoldScope running(this, "thread-pool task");
      task();
    }
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
    }
    progress_cv_.NotifyAll();
  }
}

}  // namespace dmb
