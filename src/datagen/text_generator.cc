#include "datagen/text_generator.h"

#include "common/hash.h"
#include "common/logging.h"

namespace dmb::datagen {

TextGenerator::TextGenerator(TextGenOptions options)
    : options_(options), rng_(options.seed) {
  DMB_CHECK(options_.model != nullptr);
  DMB_CHECK(options_.min_words_per_line >= 1);
  DMB_CHECK(options_.max_words_per_line >= options_.min_words_per_line);
}

std::string TextGenerator::NextLine() {
  const int words = static_cast<int>(rng_.UniformRange(
      options_.min_words_per_line, options_.max_words_per_line));
  std::string line;
  line.reserve(static_cast<size_t>(words) * 8);
  for (int w = 0; w < words; ++w) {
    if (w > 0) line.push_back(' ');
    line += options_.model->WordText(options_.model->SampleWordId(&rng_));
  }
  return line;
}

std::vector<std::string> TextGenerator::GenerateLines(int64_t bytes) {
  std::vector<std::string> lines;
  int64_t produced = 0;
  while (produced < bytes) {
    lines.push_back(NextLine());
    produced += static_cast<int64_t>(lines.back().size()) + 1;
  }
  return lines;
}

std::string TextGenerator::GenerateText(int64_t bytes) {
  std::string out;
  out.reserve(static_cast<size_t>(bytes) + 128);
  while (static_cast<int64_t>(out.size()) < bytes) {
    out += NextLine();
    out.push_back('\n');
  }
  return out;
}

TextGenerator TextGenerator::ForPartition(int index) const {
  TextGenOptions opts = options_;
  opts.seed = HashCombine(options_.seed, Mix64(static_cast<uint64_t>(index) + 1));
  return TextGenerator(opts);
}

}  // namespace dmb::datagen
