// Figure 7 / Section 4.7: the seven-pronged summary.
// Re-derives all seven dimensions from fresh simulations:
//   1. micro-benchmark performance   (avg improvement, Figure 3 runs)
//   2. small-job performance         (Figure 5 runs)
//   3. application performance       (Figure 6 runs)
//   4. CPU efficiency                (Figure 4 averages)
//   5. disk I/O throughput           (Figure 4 averages)
//   6. network throughput            (Figure 4 averages)
//   7. memory efficiency             (Figure 4 averages)
// Every per-engine series is produced by iterating the engine registry;
// DataMPI's improvement is then quoted against each other registered
// engine. Paper reference: DataMPI improves on Hadoop by 40% (micro),
// 54% (small), 36% (apps); on Spark by 14% and 33% (micro/apps); CPU
// 35/34/59% (DataMPI/Spark/Hadoop); net +55%/+59% vs Spark/Hadoop.

#include <map>
#include <vector>

#include "bench_util.h"
#include "engine/registry.h"

namespace dmb::bench {
namespace {

using simfw::ExperimentOptions;
using simfw::Framework;
using simfw::SimulateWorkload;

struct Accumulator {
  double sum = 0;
  int n = 0;
  void Add(double v) {
    sum += v;
    ++n;
  }
  double Mean() const { return n ? sum / n : 0.0; }
};

/// One simulated run per registered engine; <= 0 marks a failed run.
std::map<Framework, double> RunAllEngines(const simfw::WorkloadProfile& p,
                                          int64_t bytes, int slots = 4) {
  std::map<Framework, double> seconds;
  for (const auto& info : engine::Engines()) {
    ExperimentOptions options;
    options.run.slots_per_node = slots;
    const auto r = SimulateWorkload(info.framework, p, bytes, options);
    seconds[info.framework] = r.job.ok() ? r.job.seconds : -1.0;
  }
  return seconds;
}

/// Folds one engine-sweep into per-baseline improvement accumulators.
void AddImprovements(const std::map<Framework, double>& seconds,
                     std::map<Framework, Accumulator>* vs) {
  const double d = seconds.at(Framework::kDataMPI);
  if (d <= 0) return;
  for (const auto& [fw, s] : seconds) {
    if (fw == Framework::kDataMPI || s <= 0) continue;
    (*vs)[fw].Add(ImprovementOver(d, s));
  }
}

}  // namespace
}  // namespace dmb::bench

int main(int argc, char** argv) {
  using namespace dmb;
  using namespace dmb::bench;

  BenchJson json = BenchJson::FromArgs(argc, argv);
  PrintTestbed(std::cout);

  // --- 1. Micro-benchmarks (vs Hadoop always; vs Spark where it runs).
  std::map<Framework, Accumulator> micro_vs;
  struct MicroCase {
    const simfw::WorkloadProfile* profile;
    std::vector<int> gbs;
  };
  const std::vector<MicroCase> micro_cases = {
      {&simfw::NormalSortProfile(), {4, 8, 16, 32}},
      {&simfw::TextSortProfile(), {8, 16, 32, 64}},
      {&simfw::WordCountProfile(), {8, 16, 32, 64}},
      {&simfw::GrepProfile(), {8, 16, 32, 64}},
  };
  for (const auto& c : micro_cases) {
    for (int gb : c.gbs) {
      AddImprovements(
          RunAllEngines(*c.profile, static_cast<int64_t>(gb) * kGiB),
          &micro_vs);
    }
  }

  // --- 2. Small jobs.
  std::map<Framework, Accumulator> small_vs;
  for (const auto* profile :
       {&simfw::TextSortProfile(), &simfw::WordCountProfile(),
        &simfw::GrepProfile()}) {
    AddImprovements(RunAllEngines(*profile, 128 * kMiB, /*slots=*/1),
                    &small_vs);
  }

  // --- 3. Applications.
  std::map<Framework, Accumulator> app_vs;
  for (int gb : {8, 16, 32, 64}) {
    const int64_t bytes = static_cast<int64_t>(gb) * kGiB;
    AddImprovements(RunAllEngines(simfw::KmeansProfile(), bytes), &app_vs);
    AddImprovements(RunAllEngines(simfw::NaiveBayesProfile(), bytes),
                    &app_vs);
  }

  // --- 4-7. Resource efficiency from the two Figure-4 cases.
  std::map<Framework, Accumulator> cpu, disk, net, mem;
  for (const auto& [profile, gb] :
       std::vector<std::pair<const simfw::WorkloadProfile*, int>>{
           {&simfw::TextSortProfile(), 8}, {&simfw::WordCountProfile(), 32}}) {
    for (const auto& info : engine::Engines()) {
      simfw::ExperimentOptions options;
      options.run.monitor = true;
      const auto r = SimulateWorkload(info.framework, *profile,
                                      static_cast<int64_t>(gb) * kGiB,
                                      options);
      if (!r.job.ok()) continue;
      cpu[info.framework].Add(r.averages.cpu_pct);
      disk[info.framework].Add(r.averages.disk_read_mbps +
                               r.averages.disk_write_mbps);
      net[info.framework].Add(r.averages.net_mbps);
      mem[info.framework].Add(r.averages.mem_gb);
    }
  }

  PrintBanner(std::cout, "Figure 7: seven-pronged summary");
  TablePrinter table({"dimension", "measured", "paper"});
  table.AddRow({"micro vs Hadoop",
                TablePrinter::Pct(micro_vs[Framework::kHadoop].Mean()),
                "40%"});
  table.AddRow({"micro vs Spark",
                TablePrinter::Pct(micro_vs[Framework::kSpark].Mean()),
                "14%"});
  table.AddRow({"small jobs vs Hadoop",
                TablePrinter::Pct(small_vs[Framework::kHadoop].Mean()),
                "54%"});
  table.AddRow({"small jobs vs Spark",
                TablePrinter::Pct(small_vs[Framework::kSpark].Mean()),
                "~0%"});
  table.AddRow({"applications vs Hadoop",
                TablePrinter::Pct(app_vs[Framework::kHadoop].Mean()), "36%"});
  table.AddRow({"applications vs Spark",
                TablePrinter::Pct(app_vs[Framework::kSpark].Mean()), "33%"});
  auto cpu_row = [&](Framework fw) {
    return TablePrinter::Num(cpu[fw].Mean(), 0) + "%";
  };
  table.AddRow({"avg CPU D/S/H",
                cpu_row(Framework::kDataMPI) + " / " +
                    cpu_row(Framework::kSpark) + " / " +
                    cpu_row(Framework::kHadoop),
                "35% / 34% / 59%"});
  auto net_gain = [&](Framework fw) {
    return TablePrinter::Pct(net[Framework::kDataMPI].Mean() /
                                 net[fw].Mean() -
                             1.0);
  };
  table.AddRow({"net throughput gain vs S/H",
                net_gain(Framework::kSpark) + " / " +
                    net_gain(Framework::kHadoop),
                "55% / 59%"});
  auto mem_row = [&](Framework fw) {
    return TablePrinter::Num(mem[fw].Mean(), 1);
  };
  table.AddRow({"avg memory GB D/S/H",
                mem_row(Framework::kDataMPI) + " / " +
                    mem_row(Framework::kSpark) + " / " +
                    mem_row(Framework::kHadoop),
                "5 / 7 / 7"});
  auto disk_row = [&](Framework fw) {
    return TablePrinter::Num(disk[fw].Mean(), 0);
  };
  table.AddRow({"avg disk MB/s D/S/H",
                disk_row(Framework::kDataMPI) + " / " +
                    disk_row(Framework::kSpark) + " / " +
                    disk_row(Framework::kHadoop),
                "D ~= S, ~49% over H"});
  table.Print(std::cout);

  // A baseline that never ran has no accumulator: skip its metric
  // rather than recording a fake 0.0.
  auto add_mean = [&json](const std::string& name,
                          const std::map<Framework, Accumulator>& by_fw,
                          Framework fw, const std::string& unit) {
    const auto it = by_fw.find(fw);
    if (it == by_fw.end() || it->second.n == 0) return;
    json.Add(name, it->second.Mean(), unit);
  };
  add_mean("fig7/micro_vs_hadoop", micro_vs, Framework::kHadoop, "fraction");
  add_mean("fig7/micro_vs_spark", micro_vs, Framework::kSpark, "fraction");
  add_mean("fig7/small_jobs_vs_hadoop", small_vs, Framework::kHadoop,
           "fraction");
  add_mean("fig7/small_jobs_vs_spark", small_vs, Framework::kSpark,
           "fraction");
  add_mean("fig7/apps_vs_hadoop", app_vs, Framework::kHadoop, "fraction");
  add_mean("fig7/apps_vs_spark", app_vs, Framework::kSpark, "fraction");
  for (const auto& [fw, name] :
       std::vector<std::pair<Framework, std::string>>{
           {Framework::kDataMPI, "datampi"},
           {Framework::kSpark, "spark"},
           {Framework::kHadoop, "hadoop"}}) {
    add_mean("fig7/cpu_pct/" + name, cpu, fw, "%");
    add_mean("fig7/net_mbps/" + name, net, fw, "MB/s");
    add_mean("fig7/disk_mbps/" + name, disk, fw, "MB/s");
    add_mean("fig7/mem_gb/" + name, mem, fw, "GB");
  }
  if (!json.Write()) return 1;
  return 0;
}
