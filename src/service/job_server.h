// JobServer: a multi-tenant job service over one shared stage runtime.
//
// Clients Submit JobRequests (tenant, priority, a runtime::Plan, an
// optional deadline); the server runs them on a single engine through
// the shared StageScheduler machinery and hands results back through
// Wait. Three layers gate a request between Submit and execution:
//
//   * admission — per-tenant queue bounds (jobs and queued charge
//     bytes) reject at Submit with ResourceExhausted, as does a job
//     whose charge exceeds its tenant's entire quota (it could never
//     run). A global in-flight bound is enforced at dispatch.
//   * budget — a TenantBudget ledger charges each job's
//     memory_budget_bytes against its tenant's quota when the job is
//     dispatched and releases it when the job finishes (or is
//     cancelled). A tenant whose quota is exhausted queues until its
//     own running jobs release budget; it never blocks other tenants'
//     dispatch (see WeightedFairQueue).
//   * fairness — dispatch order is weighted fair across tenants,
//     priority-then-FIFO within one (src/service/fair_queue.h).
//
// Every job gets a CancelToken threaded through SchedulerOptions into
// each stage's JobSpec: Cancel(id) (or deadline expiry, watched by a
// reaper thread) stops a running plan mid-stage — in-flight batch
// channels are cancelled exactly like a stage failure, engines stop at
// their next record — and the job's Wait result carries the token's
// Status::Cancelled verbatim, with its budget released. Barrier-only
// plans multiplex their stage tasks over the server's shared stage
// pool; a plan that pipelines narrow edges gets its private pool (its
// producers park on backpressure and may not hold shared threads).

#ifndef DATAMPI_BENCH_SERVICE_JOB_SERVER_H_
#define DATAMPI_BENCH_SERVICE_JOB_SERVER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/histogram.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "runtime/plan.h"
#include "service/fair_queue.h"

namespace dmb::service {

using JobId = uint64_t;

/// \brief Per-tenant resource policy.
struct TenantConfig {
  /// Fair-share weight (> 0): a tenant with weight 2 dispatches twice
  /// as often as a weight-1 tenant under contention.
  double weight = 1.0;
  /// Memory quota: the sum of charge bytes of the tenant's running
  /// jobs never exceeds this.
  int64_t quota_bytes = 256LL << 20;
};

/// \brief One job submission.
struct JobRequest {
  std::string tenant;
  /// Higher dispatches first within the tenant (cross-tenant order is
  /// fairness-driven, not priority-driven).
  int priority = 0;
  runtime::Plan plan;
  /// Wall-clock deadline from Submit, in milliseconds; past it the job
  /// is cancelled (queued or running) and Wait returns
  /// Status::Cancelled. 0 = no deadline.
  int64_t deadline_ms = 0;
  /// Budget charge against the tenant quota while the job runs; 0 =
  /// derived from the plan (max stage memory_budget_bytes, minimum
  /// JobServerOptions::default_charge_bytes).
  int64_t memory_budget_bytes = 0;
};

/// \brief Per-job service-side latency breakdown.
struct JobStats {
  double admit_seconds = 0;  // Submit's admission bookkeeping
  double queue_seconds = 0;  // admitted -> dispatched to a worker
  double run_seconds = 0;    // dispatched -> finished
  double total_seconds = 0;  // Submit -> finished
  int64_t charged_bytes = 0; // budget held while running
};

/// \brief What Wait returns: the plan's result (output valid only when
/// status is OK) plus the service-side latency breakdown.
struct JobResult {
  Status status = Status::OK();
  runtime::PlanOutput output;
  JobStats stats;
};

/// \brief One tenant's slice of a ServerStats snapshot.
struct TenantStats {
  int64_t submitted = 0;
  int64_t completed = 0;  // finished OK
  int64_t rejected = 0;   // refused at Submit (admission or quota)
  int64_t cancelled = 0;  // client cancel, deadline, or shutdown
  int64_t failed = 0;     // finished with a non-cancel error
  int64_t queued = 0;     // waiting to dispatch, right now
  int64_t running = 0;    // dispatched, not yet finished, right now
  int64_t in_use_bytes = 0;    // budget currently charged
  int64_t quota_bytes = 0;
  double jobs_per_second = 0;  // completed / server uptime
  double p50_total_seconds = 0;  // Submit->finish latency percentiles
  double p99_total_seconds = 0;  // over completed jobs
};

/// \brief Aggregate service counters (Stats snapshot).
struct ServerStats {
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  int64_t cancelled = 0;
  int64_t failed = 0;
  int64_t queued = 0;
  int64_t running = 0;
  double uptime_seconds = 0;
  double jobs_per_second = 0;
  double p50_total_seconds = 0;
  double p99_total_seconds = 0;
  /// Snapshot of the shared engine StageCache the tenants' cache-keyed
  /// plans hit (per-tenant cached datasets; zeros when no plan used the
  /// cache).
  runtime::CacheStats cache;
  std::map<std::string, TenantStats> tenants;
};

/// \brief Server shape.
struct JobServerOptions {
  /// Concurrent jobs (each worker drives one plan at a time); also the
  /// global in-flight admission bound.
  int worker_threads = 4;
  /// Shared stage pool width for barrier-only plans; 0 = 2x workers.
  int stage_pool_threads = 0;
  /// Per-tenant admission bounds, enforced at Submit.
  int max_queued_jobs_per_tenant = 1024;
  int64_t max_queued_bytes_per_tenant = 512LL << 20;
  /// Charge for jobs that declare no budget of their own.
  int64_t default_charge_bytes = 1LL << 20;
  /// Policy for tenants never passed to ConfigureTenant.
  TenantConfig default_tenant;
  /// SchedulerOptions::max_concurrent_stages for each plan run.
  int max_concurrent_stages = 4;
};

/// \brief Tracks one tenant's charged budget against its quota.
/// Caller-synchronized (the JobServer mutex).
class TenantBudget {
 public:
  explicit TenantBudget(int64_t quota_bytes) : quota_(quota_bytes) {}

  /// \brief Charges `bytes` if it fits; false leaves the ledger as-is.
  bool TryCharge(int64_t bytes) {
    if (in_use_ + bytes > quota_) return false;
    in_use_ += bytes;
    return true;
  }
  void Release(int64_t bytes) { in_use_ = in_use_ > bytes ? in_use_ - bytes : 0; }

  int64_t in_use() const { return in_use_; }
  int64_t quota() const { return quota_; }
  void set_quota(int64_t quota_bytes) { quota_ = quota_bytes; }

 private:
  int64_t quota_;
  int64_t in_use_ = 0;
};

/// \brief The multi-tenant job service.
class JobServer {
 public:
  JobServer(engine::Engine* engine, JobServerOptions options = {});
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// \brief Sets a tenant's weight and quota (before or after its first
  /// Submit; a quota change applies to future charges).
  void ConfigureTenant(const std::string& tenant, TenantConfig config);

  /// \brief Admits a job. ResourceExhausted = rejected (queue bounds,
  /// or a charge no quota could ever fit); FailedPrecondition after
  /// Shutdown; InvalidArgument for a malformed request.
  Result<JobId> Submit(JobRequest request);

  /// \brief Blocks until the job finishes and consumes its result
  /// (a second Wait on the same id returns NotFound).
  Result<JobResult> Wait(JobId id);

  /// \brief Cancels a queued or running job with Status::Cancelled.
  /// False if the id already finished or never existed. Queued jobs
  /// finish immediately; running jobs stop at the engines' next record
  /// and their budget is released when the plan unwinds.
  bool Cancel(JobId id);

  /// \brief Point-in-time counters.
  ServerStats Stats() const;

  /// \brief Stops admission, cancels every queued job ("server
  /// shutting down"), lets running jobs finish, joins all threads.
  /// Unconsumed results stay retrievable via Wait until destruction.
  void Shutdown();

 private:
  enum class JobState { kQueued, kRunning, kDone };

  struct Job {
    JobId id = 0;
    std::string tenant;
    int64_t charge = 0;
    int64_t deadline_ms = 0;
    runtime::Plan plan;
    std::shared_ptr<CancelToken> cancel;
    JobState state = JobState::kQueued;
    std::chrono::steady_clock::time_point submit_tp;
    std::chrono::steady_clock::time_point dispatch_tp;
    double admit_seconds = 0;
    bool waited = false;      // a Wait call owns this job's result
    JobResult result;         // valid once state == kDone
  };

  struct Tenant {
    TenantConfig config;
    TenantBudget budget{0};
    TenantStats counters;     // the accumulating subset of TenantStats
    Histogram latency;        // total_seconds of completed jobs
  };

  Tenant& GetTenant(const std::string& name) DMB_REQUIRES(mu_);
  void WorkerLoop();
  void ReaperLoop();
  /// Finalizes a still-queued job (cancel/deadline/shutdown).
  void FinishQueuedJob(Job* job, Status status) DMB_REQUIRES(mu_);
  /// Cancels by id with an arbitrary status; shared by Cancel, the
  /// deadline reaper and Shutdown.
  bool CancelWithStatus(JobId id, const Status& status);

  engine::Engine* const engine_;
  const JobServerOptions options_;
  const std::chrono::steady_clock::time_point start_tp_;

  mutable Mutex mu_;
  CondVar work_cv_;   // workers: queue/budget/shutdown
  CondVar done_cv_;   // waiters: job completions
  CondVar reaper_cv_; // reaper: new deadline/shutdown
  bool shutdown_ DMB_GUARDED_BY(mu_) = false;
  JobId next_id_ DMB_GUARDED_BY(mu_) = 1;
  int running_jobs_ DMB_GUARDED_BY(mu_) = 0;
  WeightedFairQueue queue_ DMB_GUARDED_BY(mu_);
  std::unordered_map<JobId, std::unique_ptr<Job>> jobs_ DMB_GUARDED_BY(mu_);
  std::map<std::string, Tenant> tenants_ DMB_GUARDED_BY(mu_);
  // Global completed-job total_seconds.
  Histogram latency_ DMB_GUARDED_BY(mu_);
  // (deadline, id) min-heap; lazily skips jobs that finished early.
  using Deadline = std::pair<std::chrono::steady_clock::time_point, JobId>;
  std::priority_queue<Deadline, std::vector<Deadline>, std::greater<>>
      deadlines_ DMB_GUARDED_BY(mu_);

  std::unique_ptr<ThreadPool> stage_pool_;
  // Service threads, joined in Shutdown. lint:allow(raw-thread)
  std::vector<std::thread> workers_;
  std::thread reaper_;  // lint:allow(raw-thread)
};

}  // namespace dmb::service

#endif  // DATAMPI_BENCH_SERVICE_JOB_SERVER_H_
