// ASCII table printer used by the benchmark harnesses to print the
// rows/series the paper's tables and figures report.

#ifndef DATAMPI_BENCH_COMMON_TABLE_PRINTER_H_
#define DATAMPI_BENCH_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace dmb {

/// \brief Collects rows of string cells and prints an aligned table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// \brief Adds a data row; its width must match the header.
  void AddRow(std::vector<std::string> row);

  /// \brief Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 1);
  /// \brief Formats a percentage like "42%"; negative -> "-42%".
  static std::string Pct(double fraction, int precision = 0);

  /// \brief Prints with a separator line under the header.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Prints a titled section banner (used before each figure/table).
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace dmb

#endif  // DATAMPI_BENCH_COMMON_TABLE_PRINTER_H_
